"""Benchmark-suite core: shared primitives, spec, runner, verification, tables.

Submodules:

* ``bitmap`` / ``nputil`` / ``hooking`` — shared vectorized primitives.
* ``counters`` — machine-independent work metrics.
* ``spec`` — the GAP benchmark rules (trials, sources, parameters).
* ``verify`` — per-kernel output verification oracles.
* ``telemetry`` — span tracing, JSONL sinks, per-trial deadlines.
* ``runner`` — executes kernels under the Baseline/Optimized rule sets.
* ``executor`` / ``sharedmem`` — process-pool campaign execution over a
  shared-memory corpus, with hard per-cell deadlines.
* ``results`` / ``tables`` — result records and Table I–V renderers.
"""

from . import counters
from .bitmap import Bitmap
from .executor import run_suite_parallel
from .results import ResultSet, RunResult
from .runner import GraphCase, build_case, run_cell, run_suite
from .spec import BenchmarkSpec, SourcePicker
from .sweeps import delta_sweep, direction_threshold_sweep, scale_sweep
from .telemetry import JsonlSink, Span, Telemetry, TrialDeadline, read_trace
from .workload import FrontierTrace, sparkline, trace_bfs

__all__ = [
    "BenchmarkSpec",
    "Bitmap",
    "FrontierTrace",
    "GraphCase",
    "JsonlSink",
    "ResultSet",
    "RunResult",
    "SourcePicker",
    "Span",
    "Telemetry",
    "TrialDeadline",
    "build_case",
    "counters",
    "delta_sweep",
    "direction_threshold_sweep",
    "read_trace",
    "run_cell",
    "run_suite",
    "run_suite_parallel",
    "scale_sweep",
    "sparkline",
    "trace_bfs",
]
