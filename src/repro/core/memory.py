"""Memory-footprint accounting for graph representations.

Section V of the paper points out a structural handicap: GraphBLAS is
designed for graphs up to 2^60 nodes and therefore uses 64-bit indices
throughout, while the other frameworks default to 32-bit indices that
easily cover the benchmark graphs — half the memory traffic per edge.
This module quantifies that: it computes the bytes a CSR representation
needs under each framework's index-width policy, so the footprint column
can sit alongside the timing tables.
"""

from __future__ import annotations

import contextlib
import tracemalloc
from dataclasses import dataclass
from typing import Iterator

from ..graphs import CSRGraph

__all__ = [
    "FootprintEstimate",
    "PeakMemory",
    "csr_bytes",
    "framework_footprints",
    "track_peak_memory",
    "INDEX_WIDTH",
]

# Index width in bytes per framework (the paper's Section V discussion).
INDEX_WIDTH: dict[str, int] = {
    "gap": 4,
    "gkc": 4,
    "galois": 4,
    "nwgraph": 4,
    "graphit": 4,
    "suitesparse": 8,  # GraphBLAS: 2^60-vertex design point
    "ligra": 4,
}

OFFSET_BYTES = 8  # row offsets are 64-bit everywhere (edge counts overflow 32-bit)


@dataclass
class PeakMemory:
    """Measured peak Python heap allocation over a tracked block."""

    peak_bytes: int = 0


@contextlib.contextmanager
def track_peak_memory() -> Iterator[PeakMemory]:
    """Measure peak heap allocation inside the block via ``tracemalloc``.

    The static estimates below model what the real C++ frameworks would
    allocate; this probe observes what the reproduction *actually* peaks
    at while a kernel runs (telemetry's ``peak_mem_bytes``).  Nested use
    is safe: an inner block resets only the peak, not the tracer, so each
    block reports the peak reached during its own extent.  tracemalloc
    slows allocation, so the runner only arms this when asked.
    """
    measurement = PeakMemory()
    started_here = not tracemalloc.is_tracing()
    if started_here:
        tracemalloc.start()
    else:
        tracemalloc.reset_peak()
    try:
        yield measurement
    finally:
        _, peak = tracemalloc.get_traced_memory()
        measurement.peak_bytes = int(peak)
        if started_here:
            tracemalloc.stop()


@dataclass(frozen=True)
class FootprintEstimate:
    """Estimated resident bytes for one framework's graph storage."""

    framework: str
    index_bytes: int
    adjacency_bytes: int
    offset_bytes: int
    weight_bytes: int

    @property
    def total_bytes(self) -> int:
        """Adjacency + offsets + weights."""
        return self.adjacency_bytes + self.offset_bytes + self.weight_bytes

    def as_row(self) -> dict[str, object]:
        """Render as a printable row (sizes in MiB)."""
        scale = 1024.0 * 1024.0
        return {
            "Framework": self.framework,
            "Index width": f"{self.index_bytes} B",
            "Adjacency (MiB)": round(self.adjacency_bytes / scale, 3),
            "Offsets (MiB)": round(self.offset_bytes / scale, 3),
            "Weights (MiB)": round(self.weight_bytes / scale, 3),
            "Total (MiB)": round(self.total_bytes / scale, 3),
        }


def csr_bytes(
    graph: CSRGraph, index_bytes: int, weight_bytes: int = 0
) -> FootprintEstimate:
    """Bytes for one CSR pair (out + in adjacency) at a given index width.

    Matches the GAP storage convention every framework here follows: both
    orientations resident (undirected graphs alias them, so they count
    once), 64-bit row offsets, optional per-edge weights.
    """
    orientations = 2 if graph.directed else 1
    adjacency = orientations * graph.num_edges * index_bytes
    offsets = orientations * (graph.num_vertices + 1) * OFFSET_BYTES
    weights = orientations * graph.num_edges * weight_bytes
    return FootprintEstimate(
        framework="",
        index_bytes=index_bytes,
        adjacency_bytes=adjacency,
        offset_bytes=offsets,
        weight_bytes=weights,
    )


def framework_footprints(
    graph: CSRGraph, weighted: bool = False
) -> list[FootprintEstimate]:
    """Per-framework storage estimates for one input graph."""
    weight_bytes = 4 if weighted else 0  # int32 weights, as in GAP
    estimates = []
    for framework, width in INDEX_WIDTH.items():
        base = csr_bytes(graph, width, weight_bytes)
        estimates.append(
            FootprintEstimate(
                framework=framework,
                index_bytes=width,
                adjacency_bytes=base.adjacency_bytes,
                offset_bytes=base.offset_bytes,
                weight_bytes=base.weight_bytes,
            )
        )
    return estimates
