"""Workload characterization: round-by-round traversal traces.

The GAP benchmark "was designed in conjunction with a workload
characterization" (Beamer et al., IISWC'15) whose central observation the
paper repeats: topology drives behaviour.  This module makes that
observable per run — it traces a BFS frontier round by round (size, edge
volume, and the push/pull decision a direction-optimizing traversal would
take), which is the data behind the classic direction-optimization plots.

``sparkline`` renders a trace as inline ASCII for the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs import CSRGraph

__all__ = ["RoundTrace", "FrontierTrace", "trace_bfs", "sparkline"]

ALPHA = 15
BETA = 18


@dataclass(frozen=True)
class RoundTrace:
    """One BFS round: frontier composition and the direction verdict."""

    round_index: int
    frontier_size: int
    frontier_edges: int
    discovered: int
    direction: str  # "push" | "pull"


@dataclass(frozen=True)
class FrontierTrace:
    """A full traversal trace plus summary statistics."""

    source: int
    rounds: list[RoundTrace]

    @property
    def num_rounds(self) -> int:
        """Number of traversal rounds until the frontier emptied."""
        return len(self.rounds)

    @property
    def peak_frontier(self) -> int:
        """Largest frontier observed."""
        return max((r.frontier_size for r in self.rounds), default=0)

    @property
    def pull_rounds(self) -> int:
        """Rounds a direction-optimizing traversal would run bottom-up."""
        return sum(1 for r in self.rounds if r.direction == "pull")

    def frontier_sizes(self) -> list[int]:
        """Frontier size per round (the classic plot's y-series)."""
        return [r.frontier_size for r in self.rounds]


def trace_bfs(graph: CSRGraph, source: int) -> FrontierTrace:
    """Trace a BFS from ``source``, recording per-round frontier shape.

    The traversal itself is a plain level-synchronous BFS; the *direction*
    column records what GAP's alpha/beta heuristics would choose at each
    round, so the trace shows where a direction-optimizing run would
    switch without perturbing the measurement.
    """
    n = graph.num_vertices
    visited = np.zeros(n, dtype=bool)
    visited[source] = True
    frontier = np.array([source], dtype=np.int64)
    edges_remaining = graph.num_edges
    rounds: list[RoundTrace] = []
    round_index = 0
    pulling = False

    while frontier.size:
        frontier_edges = int(graph.out_degrees[frontier].sum())
        edges_remaining -= frontier_edges
        if not pulling and frontier_edges > max(edges_remaining, 1) // ALPHA:
            pulling = True
        elif pulling and frontier.size < n // BETA:
            pulling = False
        starts = graph.indptr[frontier]
        ends = graph.indptr[frontier + 1]
        chunks = [graph.indices[s:e] for s, e in zip(starts, ends) if e > s]
        targets = (
            np.unique(np.concatenate(chunks)) if chunks else np.empty(0, dtype=np.int64)
        )
        fresh = targets[~visited[targets]]
        visited[fresh] = True
        rounds.append(
            RoundTrace(
                round_index=round_index,
                frontier_size=int(frontier.size),
                frontier_edges=frontier_edges,
                discovered=int(fresh.size),
                direction="pull" if pulling else "push",
            )
        )
        frontier = fresh
        round_index += 1
    return FrontierTrace(source=source, rounds=rounds)


_BARS = " .:-=+*#%@"


def sparkline(values: list[int], width: int = 60) -> str:
    """Render a value series as a fixed-width ASCII sparkline."""
    if not values:
        return ""
    values_array = np.asarray(values, dtype=np.float64)
    if len(values) > width:
        # Downsample by max within buckets so peaks stay visible.
        buckets = np.array_split(values_array, width)
        values_array = np.array([b.max() for b in buckets])
    top = values_array.max()
    if top <= 0:
        return " " * len(values_array)
    scaled = np.ceil(values_array / top * (len(_BARS) - 1)).astype(int)
    return "".join(_BARS[level] for level in scaled)
