"""Pickle-free shared-memory publication of the prebuilt graph corpus.

The parallel campaign executor builds each :class:`~repro.core.runner.GraphCase`
once and shards its cells across worker processes.  Sending CSR arrays to
every worker through a pipe would pickle megabytes per graph per worker;
instead the parent copies each case's unique arrays once into a
:mod:`multiprocessing.shared_memory` segment and hands workers a small
picklable :class:`SharedCaseHandle`.  Attaching rehydrates the case as
read-only NumPy views over the segment — zero-copy, one physical corpus
shared by every worker regardless of worker count.

Aliasing is preserved exactly (via :func:`repro.graphs.cache.decompose_case`):
the in-adjacency of an undirected graph attaches as the *same* ndarray as
its out-adjacency, and a view that is the base graph (e.g. ``undirected``
of an already-undirected input) attaches as the same :class:`CSRGraph`
object — the derivation invariants of ``GraphCase`` survive the trip.

Lifecycle: the parent owns the segment (:class:`SharedCase`) and unlinks
it when the campaign ends; workers attach (:func:`attach_case`) and drop
their mapping at process exit.  Attached views are marked read-only so a
kernel that mutates its input fails loudly instead of corrupting the
corpus for every other cell.

File-backed datasets (:mod:`repro.graphs.datasets`) ride the same path:
the parent parses the file once while building the case, and workers
attach the published CSR arrays — a worker never opens or re-reads the
dataset file, so campaign behavior cannot depend on the file still
existing (or still having the same bytes) after the corpus is built.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..graphs.cache import decompose_case, recompose_case
from .runner import GraphCase

__all__ = ["SharedCase", "SharedCaseHandle", "AttachedCase", "export_case", "attach_case"]

# Segment offsets rounded up to cache-line multiples: keeps every array
# naturally aligned for any dtype and avoids false sharing at boundaries.
_ALIGNMENT = 64


@dataclass(frozen=True)
class SharedCaseHandle:
    """Picklable recipe for attaching one case: segment name + layout.

    ``arrays`` holds one ``(offset, dtype, shape)`` triple per unique
    array in the segment; ``layout`` is the case structure from
    :func:`~repro.graphs.cache.decompose_case`.
    """

    name: str
    segment: str
    arrays: tuple[tuple[int, str, tuple[int, ...]], ...]
    layout: dict[str, object]


def _attach_untracked(segment: str) -> shared_memory.SharedMemory:
    """Attach to a segment without registering it with the resource tracker.

    Python < 3.13 registers every attachment with the resource tracker,
    which then unlinks the segment when the attaching process exits —
    destroying it under the parent that still owns it (bpo-38119); with a
    forked worker the tracker is *shared*, so even unregistering after the
    fact would strip the owner's registration.  Suppressing registration
    for the duration of the attach leaves ownership solely with the
    creator.  (Python >= 3.13 exposes this as ``track=False``.)
    """
    try:
        return shared_memory.SharedMemory(name=segment, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register

    def register(name: str, rtype: str) -> None:
        if rtype != "shared_memory":
            original_register(name, rtype)

    resource_tracker.register = register
    try:
        return shared_memory.SharedMemory(name=segment)
    finally:
        resource_tracker.register = original_register


class SharedCase:
    """Owner side of one exported case: the segment plus its handle."""

    def __init__(self, case: GraphCase) -> None:
        layout, arrays = decompose_case(case.graph, case.weighted, case.undirected)
        specs: list[tuple[int, str, tuple[int, ...]]] = []
        offset = 0
        contiguous = [np.ascontiguousarray(array) for array in arrays]
        for array in contiguous:
            offset = -(-offset // _ALIGNMENT) * _ALIGNMENT
            specs.append((offset, array.dtype.str, array.shape))
            offset += array.nbytes
        self._shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        try:
            self._copy_arrays(contiguous, specs)
        except BaseException:
            # The segment exists but no caller ever saw this object: a
            # KeyboardInterrupt (or any failure) mid-copy would otherwise
            # leak the /dev/shm segment until reboot.
            self.close(unlink=True)
            raise
        self.handle = SharedCaseHandle(
            name=case.name,
            segment=self._shm.name,
            arrays=tuple(specs),
            layout=layout,
        )

    def _copy_arrays(
        self,
        contiguous: list[np.ndarray],
        specs: list[tuple[int, str, tuple[int, ...]]],
    ) -> None:
        for array, (start, dtype, shape) in zip(contiguous, specs):
            destination = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=start
            )
            destination[...] = array

    @property
    def nbytes(self) -> int:
        return self._shm.size

    def close(self, unlink: bool = True) -> None:
        """Drop the owner mapping and (by default) destroy the segment."""
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exported views still alive
            pass
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass


class AttachedCase:
    """Worker side: a case whose arrays are views over a shared segment."""

    def __init__(self, case: GraphCase, shm: shared_memory.SharedMemory) -> None:
        self.case = case
        self._shm = shm

    def close(self) -> None:
        """Best-effort unmap (process exit cleans up regardless)."""
        try:
            self._shm.close()
        except BufferError:
            # NumPy views still reference the mapping; the OS reclaims it
            # when the process exits.
            pass


def export_case(case: GraphCase) -> SharedCase:
    """Publish one case to a fresh shared-memory segment."""
    return SharedCase(case)


def attach_case(handle: SharedCaseHandle) -> AttachedCase:
    """Attach to an exported case; arrays are zero-copy read-only views."""
    shm = _attach_untracked(handle.segment)
    views: list[np.ndarray] = []
    for offset, dtype, shape in handle.arrays:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
        view.flags.writeable = False
        views.append(view)
    graph, weighted, undirected = recompose_case(handle.layout, views)
    return AttachedCase(GraphCase(handle.name, graph, weighted, undirected), shm)
