"""Dense bitmap used for frontier and visited-set representations.

Several frameworks in the study rely on dense bitmaps: the GAP reference
uses one for the pull phase of direction-optimizing BFS and to store BC
successors, GraphIt's schedules can select a "bitvector" frontier layout,
and GraphBLAS internally converts sparse vectors to bitmaps for pull steps.
This shared utility wraps a NumPy boolean array with the operations those
uses need.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Bitmap"]


class Bitmap:
    """A fixed-size set of vertex ids backed by a boolean array."""

    __slots__ = ("bits",)

    def __init__(self, size: int) -> None:
        self.bits = np.zeros(size, dtype=bool)

    @classmethod
    def from_indices(cls, size: int, indices: np.ndarray) -> "Bitmap":
        """Build a bitmap with the given ids set."""
        bitmap = cls(size)
        bitmap.bits[indices] = True
        return bitmap

    @property
    def size(self) -> int:
        return int(self.bits.size)

    def set(self, indices: np.ndarray | int) -> None:
        """Mark ids as present."""
        self.bits[indices] = True

    def clear(self, indices: np.ndarray | int | None = None) -> None:
        """Unmark ids, or reset the whole bitmap when called without args."""
        if indices is None:
            self.bits[:] = False
        else:
            self.bits[indices] = False

    def contains(self, indices: np.ndarray | int) -> np.ndarray | bool:
        """Membership of one id or a vector of ids."""
        result = self.bits[indices]
        return bool(result) if np.isscalar(indices) else result

    def to_indices(self) -> np.ndarray:
        """Sorted array of ids currently set."""
        return np.flatnonzero(self.bits)

    def count(self) -> int:
        """Number of ids set."""
        return int(self.bits.sum())

    def swap(self, other: "Bitmap") -> None:
        """Exchange contents with another bitmap (double-buffered frontiers)."""
        self.bits, other.bits = other.bits, self.bits

    def __len__(self) -> int:
        return self.count()

    def __contains__(self, vertex: int) -> bool:
        return bool(self.bits[vertex])
