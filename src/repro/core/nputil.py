"""Vectorized CSR access helpers shared by all framework implementations.

Expanding "the out-edges of every vertex in a frontier" is a raw memory
operation every framework performs identically in hardware; the frameworks
differentiate *above* this level (frontier representation, direction choice,
scheduling).  Centralizing the gather keeps each framework package focused
on what actually distinguishes it in the paper.
"""

from __future__ import annotations

import numpy as np

__all__ = ["expand_frontier", "expand_frontier_weighted", "row_slices"]


def expand_frontier(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gather all edges leaving ``frontier``.

    Returns ``(sources, targets)`` where ``sources[i]`` is the frontier
    vertex owning edge ``i`` and ``targets[i]`` its head.  Duplicate targets
    are preserved (deduplication policy is a framework decision).
    """
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    # Build a flat index selecting each vertex's adjacency slice: offsets
    # within the concatenated output minus the cumulative starts.
    sources = np.repeat(frontier, counts)
    offsets = np.arange(total, dtype=np.int64)
    row_begin = np.repeat(np.cumsum(counts) - counts, counts)
    flat = np.repeat(starts, counts) + (offsets - row_begin)
    return sources, indices[flat]


def expand_frontier_weighted(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    frontier: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Like :func:`expand_frontier` but also returns per-edge weights."""
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=weights.dtype)
    sources = np.repeat(frontier, counts)
    offsets = np.arange(total, dtype=np.int64)
    row_begin = np.repeat(np.cumsum(counts) - counts, counts)
    flat = np.repeat(starts, counts) + (offsets - row_begin)
    return sources, indices[flat], weights[flat]


def row_slices(
    indptr: np.ndarray, indices: np.ndarray, vertices: np.ndarray
) -> list[np.ndarray]:
    """Adjacency rows of ``vertices`` as a list of array views."""
    return [indices[indptr[v]: indptr[v + 1]] for v in vertices]
