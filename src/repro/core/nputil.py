"""Vectorized CSR access helpers shared by all framework implementations.

Expanding "the out-edges of every vertex in a frontier" is a raw memory
operation every framework performs identically in hardware; the frameworks
differentiate *above* this level (frontier representation, direction choice,
scheduling).  Centralizing the gather keeps each framework package focused
on what actually distinguishes it in the paper.

Since the substrate port these are thin aliases over :mod:`repro.la.gather`
(kept so the long-standing import surface survives); the actual gather —
and its pre-port reference formulation — lives there.
"""

from __future__ import annotations

import numpy as np

from ..la.gather import gather_edges, gather_edges_weighted

__all__ = ["expand_frontier", "expand_frontier_weighted", "row_slices"]


def expand_frontier(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gather all edges leaving ``frontier``.

    Returns ``(sources, targets)`` where ``sources[i]`` is the frontier
    vertex owning edge ``i`` and ``targets[i]`` its head.  Duplicate targets
    are preserved (deduplication policy is a framework decision).
    """
    return gather_edges(indptr, indices, frontier)


def expand_frontier_weighted(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    frontier: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Like :func:`expand_frontier` but also returns per-edge weights."""
    return gather_edges_weighted(indptr, indices, weights, frontier)


def row_slices(
    indptr: np.ndarray, indices: np.ndarray, vertices: np.ndarray
) -> list[np.ndarray]:
    """Adjacency rows of ``vertices`` as a list of array views."""
    return [indices[indptr[v]: indptr[v + 1]] for v in vertices]
