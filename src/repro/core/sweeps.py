"""Parameter sweeps: the library API behind the ablation benches.

Each sweep runs a kernel across one tuning dimension and returns row
dicts (parameter, seconds, work counters) ready for ``tables.render`` or
the markdown writer.  Three sweeps cover the sensitivities the paper's
methodology discusses:

* ``delta_sweep`` — SSSP bucket width (the Baseline rules' one explicit
  tuning exception, "orders of magnitude difference" on Road);
* ``direction_threshold_sweep`` — the alpha parameter of
  direction-optimizing BFS (the push->pull switch the reference tunes);
* ``scale_sweep`` — kernel time versus graph size for a fixed topology.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..gapbs.bfs import direction_optimizing_bfs
from ..gapbs.sssp import delta_stepping
from ..generators import build_graph, weighted_version
from ..graphs import CSRGraph
from . import counters
from .spec import SourcePicker

__all__ = ["delta_sweep", "direction_threshold_sweep", "scale_sweep"]


def _timed(run: Callable[[], object], repeats: int) -> tuple[float, counters.WorkCounters]:
    """Best-of-``repeats`` wall time plus the work counters of the best run."""
    best = np.inf
    best_work = counters.WorkCounters()
    for _ in range(repeats):
        with counters.counting() as work:
            start = time.perf_counter()
            run()
            elapsed = time.perf_counter() - start
        if elapsed < best:
            best, best_work = elapsed, work
    return best, best_work


def delta_sweep(
    graph: CSRGraph,
    deltas: tuple[int, ...] = (4, 16, 64, 256, 1024),
    seed: int = 0,
    repeats: int = 3,
) -> list[dict[str, object]]:
    """SSSP time and rounds across bucket widths."""
    weighted = graph if graph.is_weighted else weighted_version(graph, seed=seed)
    source = SourcePicker(weighted, seed).next_source()
    rows = []
    for delta in deltas:
        seconds, work = _timed(
            lambda: delta_stepping(weighted, source, delta=delta), repeats
        )
        rows.append(
            {
                "delta": delta,
                "seconds": round(seconds, 6),
                "rounds": work.rounds,
                "edges": work.edges_examined,
            }
        )
    return rows


def direction_threshold_sweep(
    graph: CSRGraph,
    alphas: tuple[int, ...] = (0, 4, 15, 64, 256),
    seed: int = 0,
    repeats: int = 3,
) -> list[dict[str, object]]:
    """BFS edge work across push->pull switch thresholds.

    GAP's switch fires when the frontier's edge volume exceeds
    ``edges_remaining / alpha`` — a *large* alpha switches to pull almost
    immediately; ``alpha = 0`` disables pulling entirely (pure push, the
    sweep's baseline).  The edge-examined column shows the optimization's
    work saving; the time column shows where the bitmap overhead wins it
    back.
    """
    source = SourcePicker(graph, seed).next_source()
    rows = []
    for alpha in alphas:
        seconds, work = _timed(
            lambda: direction_optimizing_bfs(graph, source, alpha=alpha), repeats
        )
        rows.append(
            {
                "alpha": alpha,
                "seconds": round(seconds, 6),
                "edges": work.edges_examined,
                "rounds": work.rounds,
                "switched": int(work.extras.get("direction_switches", 0)),
            }
        )
    return rows


def scale_sweep(
    graph_name: str,
    kernel: Callable[[CSRGraph], object],
    scales: tuple[int, ...] = (9, 10, 11, 12),
    seed: int = 0,
    repeats: int = 3,
) -> list[dict[str, object]]:
    """Kernel time versus graph scale for one topology class."""
    rows = []
    for scale in scales:
        graph = build_graph(graph_name, scale=scale, seed=seed)
        seconds, work = _timed(lambda: kernel(graph), repeats)
        rows.append(
            {
                "scale": scale,
                "vertices": graph.num_vertices,
                "edges": graph.num_edges,
                "seconds": round(seconds, 6),
                "work_edges": work.edges_examined,
            }
        )
    return rows
