"""Persistent warm worker pools for the parallel campaign executor.

The first parallel executor spawned a fresh pool per campaign and paid
for it: at paper scale the cells are milliseconds long, so process
creation, interpreter/module setup, and teardown dominated wall time and
``--jobs 2`` ran at 0.41x of serial.  This module makes the pool a
long-lived object:

* **Spawn once** — :class:`WorkerPool` starts its workers at
  construction and keeps them alive across campaigns.  A campaign is a
  *message* (``begin_campaign``), not a pool lifetime: benchmarks and
  resumed campaigns hand the same pool handle to successive
  ``run_suite_parallel`` calls and pay spawn cost exactly once.
* **Lazy attach** — workers receive the shared-memory corpus handles
  with the campaign message but attach each graph only when a cell
  first needs it, so a resumed campaign whose remaining cells touch one
  graph never maps the others.
* **Lazy framework imports** — frameworks travel as pickled blobs and
  are unpickled in the worker on first use, so a worker that only ever
  runs ``gap`` cells never imports the other five framework stacks
  (under ``spawn`` contexts, unpickling is what triggers the import).
* **Batched dispatch** — the unit of work is a *batch* of cells
  (:mod:`repro.core.batching`): one queue message, one pickle, one
  wakeup per batch.  Workers still report ``start`` / ``cell`` per
  member, so supervision, telemetry, retries, and the journal all stay
  per-cell.

The pool is transport only: scheduling policy (deadlines, retries,
breakers, crash accounting) lives in :mod:`repro.core.executor`, which
owns the bookkeeping of what each slot was assigned.  Messages carry a
campaign sequence number; anything from a previous campaign (e.g. after
an abort on a reused pool) is dropped at :meth:`WorkerPool.get`.
"""

from __future__ import annotations

import multiprocessing
import pickle
import signal
import time
from typing import TYPE_CHECKING, Mapping

from .results import RunResult
from .runner import _failed_result, run_cell
from .sharedmem import AttachedCase, SharedCaseHandle, attach_case
from .spec import BenchmarkSpec
from .telemetry import Telemetry

if TYPE_CHECKING:
    from .batching import Cell

__all__ = ["WorkerPool"]


class _LazyFrameworks:
    """Worker-side framework registry: unpickle (and import) on first use."""

    def __init__(self, blobs: Mapping[str, bytes]) -> None:
        self._blobs = dict(blobs)
        self._loaded: dict[str, object] = {}

    def get(self, name: str):
        if name not in self._loaded:
            self._loaded[name] = pickle.loads(self._blobs[name])
        return self._loaded[name]


class _LazyCorpus:
    """Worker-side corpus: attach each graph's segment on first use."""

    def __init__(self, handles: Mapping[str, SharedCaseHandle]) -> None:
        self._handles = dict(handles)
        self._attached: dict[str, AttachedCase] = {}

    def get(self, graph: str):
        if graph not in self._attached:
            self._attached[graph] = attach_case(self._handles[graph])
        return self._attached[graph].case

    def close(self) -> None:
        for attachment in self._attached.values():
            attachment.close()
        self._attached.clear()


def _infra_failed_result(cell: "Cell", exc: BaseException) -> RunResult:
    """A cell that failed before its framework/graph even materialized."""
    return RunResult(
        framework=cell.framework,
        kernel=cell.kernel,
        graph=cell.graph,
        mode=cell.mode,
        trial_seconds=[],
        verified=False,
        status="error",
        error=f"{type(exc).__name__}: {exc}",
    )


def _worker_main(slot: int, tasks, results) -> None:
    """Warm-worker loop: configure per campaign, drain batches until sentinel.

    Runs on the worker's main thread, so ``run_cell``'s in-process SIGALRM
    deadline is armed and catches interruptible overruns without costing a
    process kill; the parent's hard kill is the backstop for the rest.
    """
    if hasattr(signal, "SIGTERM"):
        # Undo any graceful_shutdown handler inherited over fork: a worker
        # the parent terminates should just die, not raise CampaignAborted.
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    spec: BenchmarkSpec | None = None
    seq = -1
    corpus: _LazyCorpus | None = None
    frameworks: _LazyFrameworks | None = None
    telemetry = Telemetry()
    try:
        while True:
            task = tasks.get()
            if task is None:
                results.put(("exit", slot))
                return
            kind = task[0]
            if kind == "campaign":
                _, seq, spec, handles, blobs, track_memory = task
                if corpus is not None:
                    corpus.close()
                corpus = _LazyCorpus(handles)
                frameworks = _LazyFrameworks(blobs)
                telemetry = Telemetry(track_memory=track_memory)
                continue
            _, task_seq, items = task
            if task_seq != seq:  # batch from a campaign that was reset
                continue
            for cell, attempt in items:
                results.put(("start", slot, seq, cell.index, attempt))
                try:
                    case = corpus.get(cell.graph)
                    framework = frameworks.get(cell.framework)
                except Exception as exc:
                    result = _infra_failed_result(cell, exc)
                else:
                    from ..errors import TrialTimeoutError

                    try:
                        result = run_cell(
                            framework, cell.kernel, case, cell.mode, spec,
                            telemetry=telemetry, attempt=attempt,
                        )
                    except TrialTimeoutError as exc:
                        result = _failed_result(
                            framework, cell.kernel, case, cell.mode, "timeout", exc
                        )
                    except Exception as exc:
                        result = _failed_result(
                            framework, cell.kernel, case, cell.mode, "error", exc
                        )
                spans = [span.as_dict() for span in telemetry.spans]
                telemetry.spans.clear()
                results.put(("cell", slot, seq, cell.index, attempt, result, spans))
    finally:
        if corpus is not None:
            corpus.close()


class WorkerPool:
    """A pool of warm worker processes, reusable across campaigns.

    Construction spawns the workers; :meth:`begin_campaign` (re)configures
    them for one campaign and returns a sequence number that stamps all of
    that campaign's messages.  The executor drives slots explicitly:
    :meth:`submit` hands one batch to one slot, :meth:`get` yields worker
    messages, :meth:`respawn` replaces a dead or killed worker (the
    replacement is configured for the current campaign automatically).

    ``fork`` is preferred (shares the already-imported interpreter state);
    ``spawn`` is the portable fallback — the campaign message carries
    everything a cold interpreter needs.
    """

    def __init__(self, jobs: int, context: str | None = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if context is None:
            methods = multiprocessing.get_all_start_methods()
            context = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(context)
        # SimpleQueue, deliberately: its put() pickles and writes to the
        # pipe *synchronously* (no feeder thread), so once a worker has
        # reported a cell the message survives even if the worker crashes
        # on the very next batch member.  A buffered Queue would lose the
        # completed results still sitting in its feeder thread, and the
        # parent would re-run cells that already finished.
        self._results = self._ctx.SimpleQueue()
        self._retired: list[object] = []
        self._slots: dict[int, dict[str, object]] = {}
        self._seq = 0
        self._campaign: tuple | None = None
        self._closed = False
        for slot in range(jobs):
            self._spawn(slot)

    @property
    def jobs(self) -> int:
        return len(self._slots)

    @property
    def closed(self) -> bool:
        """True once :meth:`shutdown` ran; a closed pool cannot be reused."""
        return self._closed

    def pids(self) -> dict[int, int | None]:
        """Slot → worker PID (stable across campaigns unless respawned)."""
        return {slot: s["process"].pid for slot, s in self._slots.items()}

    def _spawn(self, slot: int) -> None:
        tasks = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main, args=(slot, tasks, self._results), daemon=True
        )
        process.start()
        self._slots[slot] = {"process": process, "queue": tasks}
        if self._campaign is not None:
            tasks.put(("campaign", self._seq, *self._campaign))

    def begin_campaign(
        self,
        spec: BenchmarkSpec,
        handles: Mapping[str, SharedCaseHandle],
        frameworks: Mapping[str, object],
        track_memory: bool = False,
    ) -> int:
        """Configure every worker for one campaign; returns its sequence.

        Dead workers are replaced first, so a reused pool always starts a
        campaign at full strength.  Frameworks are pickled once here and
        unpickled lazily in workers on first use.
        """
        if self._closed:
            # A long-lived owner (the benchmark service) must hear about a
            # lifecycle bug immediately, not via hung queue operations.
            raise RuntimeError("WorkerPool is shut down; create a new pool")
        self._seq += 1
        blobs = {name: pickle.dumps(fw) for name, fw in frameworks.items()}
        self._campaign = (spec, dict(handles), blobs, track_memory)
        for slot in list(self._slots):
            if not self._slots[slot]["process"].is_alive():
                self.respawn(slot)  # respawn sends the campaign message
            else:
                self._slots[slot]["queue"].put(("campaign", self._seq, *self._campaign))
        return self._seq

    def submit(self, slot: int, items: list) -> None:
        """Dispatch one batch of ``(cell, attempt)`` pairs to one slot."""
        self._slots[slot]["queue"].put(("batch", self._seq, list(items)))

    def get(self, timeout: float | None = None):
        """Next worker message, stripped of its campaign stamp, or None.

        Stale messages (from a campaign that has since been reset on this
        pool) are dropped here so the executor never sees them.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            # SimpleQueue has no get(timeout=); poll the read end instead.
            if not self._results._reader.poll(remaining):
                return None
            message = self._results.get()
            kind = message[0]
            if kind == "exit":
                return message
            if message[2] != self._seq:
                continue
            if kind == "start":
                _, slot, _, index, attempt = message
                return ("start", slot, index, attempt)
            _, slot, _, index, attempt, result, spans = message
            return ("cell", slot, index, attempt, result, spans)

    def get_nowait(self):
        """Like :meth:`get` but never blocks."""
        return self.get(timeout=0.0)

    def is_alive(self, slot: int) -> bool:
        """Whether the worker currently occupying ``slot`` is running."""
        return self._slots[slot]["process"].is_alive()

    def exitcode(self, slot: int) -> int | None:
        """Exit code of the worker in ``slot`` (``None`` while alive)."""
        return self._slots[slot]["process"].exitcode

    def respawn(self, slot: int) -> None:
        """Replace one worker (killing it first if still alive).

        The replacement gets a *fresh* task queue so it can never consume
        a batch the executor already accounted as lost, and is configured
        for the current campaign before it sees any work.
        """
        state = self._slots[slot]
        process = state["process"]
        if process.is_alive():
            process.terminate()
            process.join(1.0)
            if process.is_alive():  # pragma: no cover - SIGTERM blocked
                process.kill()
                process.join(1.0)
        self._retired.append(state["queue"])
        self._spawn(slot)

    def reset(self) -> None:
        """Kill and respawn every worker, discarding in-flight work.

        Used when a campaign on a shared pool aborts: the pool stays
        usable for the next campaign, and stamp filtering in :meth:`get`
        drops anything the old workers managed to send.
        """
        for slot in list(self._slots):
            self.respawn(slot)

    def shutdown(self) -> None:
        """Stop all workers and release queues.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for state in self._slots.values():
            if state["process"].is_alive():
                state["queue"].put(None)
        for state in self._slots.values():
            process = state["process"]
            process.join(5.0)
            if process.is_alive():
                process.terminate()
                process.join(1.0)
        self._results.close()
        queues = [state["queue"] for state in self._slots.values()]
        for q in [*queues, *self._retired]:
            q.close()
            q.cancel_join_thread()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False
