"""Renderers for the paper's Tables I–V over this reproduction's results.

Each ``table*`` function returns structured rows (lists of dicts) so tests
can assert on content; ``render`` turns any row list into aligned ASCII for
the examples and EXPERIMENTS.md.
"""

from __future__ import annotations

from ..frameworks.base import KERNELS, Mode
from ..frameworks.registry import FRAMEWORK_NAMES, attributes_table, get
from ..generators import GAP_GRAPHS
from ..graphs import CSRGraph, analyze
from .results import ResultSet

__all__ = [
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "table5_rows",
    "stability_rows",
    "failure_rows",
    "trial_statistics_rows",
    "render",
    "KERNEL_LABELS",
]

KERNEL_LABELS = {
    "bfs": "BFS",
    "sssp": "SSSP",
    "cc": "CC",
    "pr": "PR",
    "bc": "BC",
    "tc": "TC",
}


def table1_rows(corpus: dict[str, CSRGraph], seed: int = 0) -> list[dict[str, object]]:
    """Table I: per-graph topology, generated analog vs paper original."""
    rows = []
    for name, graph in corpus.items():
        spec = GAP_GRAPHS[name]
        properties = analyze(graph, name=name, seed=seed)
        rows.append(
            {
                "Name": name,
                "Vertices": properties.num_vertices,
                "Edges": properties.num_edges,
                "Directed": "Y" if properties.directed else "N",
                "Degree": round(properties.average_degree, 1),
                "Distribution": properties.degree_distribution,
                "Diameter~": properties.approx_diameter,
                "Paper Vertices (M)": spec.paper_vertices_m,
                "Paper Edges (M)": spec.paper_edges_m,
                "Paper Degree": spec.paper_degree,
                "Paper Distribution": spec.paper_distribution,
                "Paper Diameter": spec.paper_diameter,
            }
        )
    return rows


def table2_rows() -> list[dict[str, str]]:
    """Table II: framework attribute matrix (static metadata)."""
    return attributes_table()


def table3_rows() -> list[dict[str, str]]:
    """Table III: algorithm used by each framework per kernel."""
    rows = []
    for kernel in KERNELS:
        row: dict[str, str] = {"Task": KERNEL_LABELS[kernel]}
        for name in FRAMEWORK_NAMES:
            row[name] = get(name).attributes.algorithms.get(kernel, "-")
        rows.append(row)
    return rows


def table4_rows(results: ResultSet, graphs: list[str]) -> list[dict[str, object]]:
    """Table IV: fastest time per kernel x graph, per mode, with the winner."""
    rows = []
    for kernel in KERNELS:
        row: dict[str, object] = {"Kernel": KERNEL_LABELS[kernel]}
        for mode in (Mode.BASELINE, Mode.OPTIMIZED):
            for graph in graphs:
                candidates = [
                    r
                    for r in results.lookup(kernel=kernel, graph=graph, mode=mode)
                    if r.ok and r.trial_seconds
                ]
                column = f"{mode.value}:{graph}"
                if not candidates:
                    row[column] = None
                    row[f"{column}:winner"] = None
                    continue
                best = min(candidates, key=lambda r: r.seconds)
                row[column] = round(best.seconds, 4)
                row[f"{column}:winner"] = best.framework
        rows.append(row)
    return rows


def table5_rows(
    results: ResultSet, graphs: list[str], reference: str = "gap"
) -> list[dict[str, object]]:
    """Table V: per-framework speedup over the GAP reference (percent).

    100% = matches the reference, 50% = twice as slow, 200% = twice as
    fast — the paper's convention.
    """
    rows = []
    for framework in results.frameworks():
        if framework == reference:
            continue
        for kernel in KERNELS:
            row: dict[str, object] = {
                "Framework": framework,
                "Kernel": KERNEL_LABELS[kernel],
            }
            for mode in (Mode.BASELINE, Mode.OPTIMIZED):
                for graph in graphs:
                    column = f"{mode.value}:{graph}"
                    mine = results.one(framework, kernel, graph, mode)
                    ref = results.one(reference, kernel, graph, mode)
                    if (
                        mine is None
                        or ref is None
                        or not (mine.ok and mine.trial_seconds)
                        or not (ref.ok and ref.trial_seconds)
                        or mine.seconds == 0
                    ):
                        row[column] = None
                        continue
                    row[column] = round(100.0 * ref.seconds / mine.seconds, 1)
            rows.append(row)
    return rows


def stability_rows(results: ResultSet, graphs: list[str]) -> list[dict[str, object]]:
    """Per-graph timing stability: mean coefficient of variation per cell.

    The paper's discussion: "timings for algorithms on Road were more
    unstable compared to other cases... most likely due to the short
    runtimes making the results more sensitive to sequential startup
    overheads."  This table aggregates the per-trial variation so that
    observation is checkable from any campaign.
    """
    rows = []
    for graph in graphs:
        cells = [
            r
            for r in results.lookup(graph=graph)
            if r.ok and len(r.trial_seconds) > 1
        ]
        if not cells:
            continue
        variations = [cell.variation for cell in cells]
        rows.append(
            {
                "Graph": graph,
                "Cells": len(cells),
                "Mean CV": round(sum(variations) / len(variations), 4),
                "Max CV": round(max(variations), 4),
            }
        )
    return rows


def failure_rows(results: ResultSet) -> list[dict[str, object]]:
    """The failure table: one row per errored/timed-out cell.

    Pollard & Norris's comparison methodology records failed cells rather
    than dropping them; this is the table the runner's fault isolation
    reports into (empty when every cell ran clean).
    """
    rows = []
    for result in results.failures():
        rows.append(
            {
                "Framework": result.framework,
                "Kernel": KERNEL_LABELS.get(result.kernel, result.kernel),
                "Graph": result.graph,
                "Mode": result.mode.value,
                "Status": result.status,
                "Error": result.error,
            }
        )
    return rows


def trial_statistics_rows(results: ResultSet) -> list[dict[str, object]]:
    """Per-cell trial statistics: p50/p95 and coefficient of variation.

    The GAP suite mandates per-trial reporting; the averaged Table IV/V
    cells hide it, so this table restores it for every ok cell.
    """
    rows = []
    for result in results:
        if not result.ok or not result.trial_seconds:
            continue
        rows.append(
            {
                "Framework": result.framework,
                "Kernel": KERNEL_LABELS.get(result.kernel, result.kernel),
                "Graph": result.graph,
                "Mode": result.mode.value,
                "Trials": len(result.trial_seconds),
                "p50 (s)": round(result.p50_seconds, 4),
                "p95 (s)": round(result.p95_seconds, 4),
                "CV": round(result.variation, 4),
            }
        )
    return rows


def render(rows: list[dict[str, object]], title: str = "") -> str:
    """Align a row list into an ASCII table."""
    if not rows:
        return f"{title}\n(no rows)\n" if title else "(no rows)\n"
    columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            " | ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines) + "\n"
