"""The GAP benchmark specification, scaled to this reproduction.

Encodes the rules of the benchmark the paper runs:

* six kernels over five graphs (30 tests), under Baseline and Optimized
  rule sets;
* BFS/SSSP run multiple trials from rotating randomly-chosen sources with
  nonzero out-degree; BC uses 4 roots per trial; CC/PR/TC are
  source-independent and repeat for timing stability;
* SSSP's delta may be tuned per graph even under Baseline rules (the one
  explicitly permitted input-sensitive parameter — it changes performance
  by orders of magnitude);
* PR runs to an L1 convergence tolerance; graph transposition is never
  timed (both orientations are stored); TC runs on the symmetrized graph.

Trial counts are scaled down from GAP's 64 to keep the pure-Python sweep
tractable; they are spec parameters, not constants.

The graph axis a spec is run over may name generator graphs *or*
file-backed datasets (``file:/path``, ``dataset:NAME`` — see
:mod:`repro.graphs.datasets`).  ``scale`` does not apply to file-backed
topology, but ``seed`` still keys the synthetic SSSP weights attached to
unweighted inputs, and ``delta_for`` falls back to the default delta for
graphs outside :data:`DELTA_BY_GRAPH`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import BenchmarkConfigError
from ..frameworks.base import KERNELS
from ..generators import DEFAULT_SCALE
from ..graphs import CSRGraph

__all__ = ["BenchmarkSpec", "SourcePicker", "DELTA_BY_GRAPH", "DEFAULT_TRIALS"]

# Per-graph delta tuned once for the corpus (allowed under Baseline rules).
DELTA_BY_GRAPH: dict[str, int] = {
    "road": 256,
    "twitter": 16,
    "web": 32,
    "kron": 16,
    "urand": 32,
}

DEFAULT_TRIALS: dict[str, int] = {
    "bfs": 4,
    "sssp": 4,
    "cc": 3,
    "pr": 3,
    "bc": 3,
    "tc": 3,
}

BC_ROOTS_PER_TRIAL = 4


@dataclass(frozen=True)
class BenchmarkSpec:
    """Configuration of one benchmark campaign."""

    scale: int = DEFAULT_SCALE
    seed: int = 0
    trials: dict[str, int] = field(default_factory=lambda: dict(DEFAULT_TRIALS))
    deltas: dict[str, int] = field(default_factory=lambda: dict(DELTA_BY_GRAPH))
    pr_tolerance: float = 1e-4
    bc_roots: int = BC_ROOTS_PER_TRIAL
    verify: bool = True
    #: Wall-clock budget per trial, in seconds (None = unlimited).  A trial
    #: over budget is recorded with status "timeout" instead of a timing.
    #: In-process (jobs=1) the deadline is soft; under the process-pool
    #: executor (jobs>1) an over-budget worker is hard-killed.
    trial_timeout: float | None = None
    #: Worker processes for the campaign.  1 = serial in-process execution;
    #: >1 shards cells across a process pool over a shared-memory corpus.
    jobs: int = 1
    #: Worker pool flavor for ``jobs > 1``: ``"process"`` (isolated
    #: workers over a shared-memory corpus; hard per-cell kills) or
    #: ``"threads"`` (threads sharing the parent's address space — no
    #: corpus publication or pickling at all, best for GIL-releasing
    #: NumPy kernels; deadlines stay soft because a thread cannot be
    #: killed).  See :mod:`repro.core.executor`.
    pool: str = "process"
    #: Cells per dispatch message under ``jobs > 1``.  ``None`` sizes
    #: batches automatically from trial counts (see
    #: :mod:`repro.core.batching`); ``1`` restores per-cell dispatch.
    #: Timeout-sensitive cells always dispatch alone regardless.
    batch_size: int | None = None
    #: Re-executions allowed per cell for *transient* failures (worker
    #: crash, OOM, corruption), with deterministic exponential backoff.
    #: Deterministic failures (verification mismatch, ValueError) and
    #: timeouts are never retried.  See :mod:`repro.resilience.retry`.
    retries: int = 0
    #: Consecutive hard failures after which a (framework, kernel) combo's
    #: remaining cells become ``skipped`` results (0 = breaker disabled).
    #: See :mod:`repro.resilience.breaker`.
    breaker_threshold: int = 0
    #: Deterministic fault-injection plan for tests and chaos CI
    #: (:class:`repro.resilience.faults.FaultSpec` tuple).  Travels to
    #: worker processes with the spec; excluded from ``as_dict`` so fault
    #: plans never enter run identities or resume fingerprints.
    faults: tuple = ()

    def __post_init__(self) -> None:
        unknown = set(self.trials) - set(KERNELS)
        if unknown:
            raise BenchmarkConfigError(f"unknown kernels in trials: {sorted(unknown)}")
        if any(count <= 0 for count in self.trials.values()):
            raise BenchmarkConfigError("trial counts must be positive")
        if self.bc_roots <= 0:
            raise BenchmarkConfigError("bc_roots must be positive")
        if self.trial_timeout is not None and self.trial_timeout <= 0:
            raise BenchmarkConfigError("trial_timeout must be positive (or None)")
        if self.jobs < 1:
            raise BenchmarkConfigError("jobs must be >= 1")
        if self.pool not in ("process", "threads"):
            raise BenchmarkConfigError(
                f"pool must be 'process' or 'threads', got {self.pool!r}"
            )
        if self.batch_size is not None and self.batch_size < 1:
            raise BenchmarkConfigError("batch_size must be >= 1 (or None = auto)")
        if self.retries < 0:
            raise BenchmarkConfigError("retries must be >= 0")
        if self.breaker_threshold < 0:
            raise BenchmarkConfigError("breaker_threshold must be >= 0")

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable form, used in archive manifests and results
        meta so every stored run carries the spec that produced it."""
        return {
            "scale": self.scale,
            "seed": self.seed,
            "trials": dict(self.trials),
            "deltas": dict(self.deltas),
            "pr_tolerance": self.pr_tolerance,
            "bc_roots": self.bc_roots,
            "verify": self.verify,
            "trial_timeout": self.trial_timeout,
            "jobs": self.jobs,
            "pool": self.pool,
            "batch_size": self.batch_size,
            "retries": self.retries,
            "breaker_threshold": self.breaker_threshold,
        }

    def num_trials(self, kernel: str) -> int:
        """Trial count for a kernel (default 3)."""
        return self.trials.get(kernel, 3)

    def delta_for(self, graph_name: str) -> int:
        """Per-graph SSSP delta (default 16 for unknown graphs)."""
        return self.deltas.get(graph_name, 16)


class SourcePicker:
    """Deterministic rotating source selection, GAP style.

    Sources are drawn uniformly from vertices with nonzero out-degree so
    every trial does real work; the sequence is a function of (graph, seed)
    only, so all frameworks see identical sources.
    """

    def __init__(self, graph: CSRGraph, seed: int = 0) -> None:
        self._candidates = np.flatnonzero(graph.out_degrees > 0)
        if self._candidates.size == 0:
            raise BenchmarkConfigError("graph has no vertex with out-degree > 0")
        self._rng = np.random.default_rng(np.random.SeedSequence([0xB5, seed]))

    def next_source(self) -> int:
        """One source vertex."""
        return int(self._rng.choice(self._candidates))

    def next_sources(self, count: int) -> np.ndarray:
        """``count`` distinct source vertices (BC's root batch)."""
        count = min(count, self._candidates.size)
        return self._rng.choice(self._candidates, size=count, replace=False)
