"""Process-pool campaign executor: shards cells across worker processes.

``run_suite`` executes the paper's 6×6×5×2 campaign serially in one
process; at that point campaign wall time, not kernel time, bounds how
fast the reproduction can iterate.  This module shards the independent
(framework, kernel, graph, mode) cells across a pool of worker processes:

* the graph corpus is built **once** per graph in the parent (optionally
  through the persistent :class:`~repro.graphs.cache.GraphCache`) and
  published to workers via :mod:`repro.core.sharedmem` — workers attach
  zero-copy read-only views, so memory stays one corpus regardless of
  worker count and no CSR array is ever pickled;
* workers stream ``start`` / ``done`` messages (results plus telemetry
  span records) back over a queue; the parent merges spans into the one
  :class:`~repro.core.telemetry.Telemetry` collector and assembles the
  :class:`~repro.core.results.ResultSet` in canonical cell order, so the
  output is byte-for-byte independent of completion order;
* process isolation turns ``BenchmarkSpec.trial_timeout`` into a **hard**
  deadline: the in-worker ``SIGALRM`` deadline still catches interruptible
  overruns cheaply, but a worker stuck inside one long C call — which no
  in-process mechanism can stop (see ``TrialDeadline``) — is killed by the
  parent once the cell exceeds its trial budgets, the cell is recorded as
  a ``timeout`` result, and a replacement worker keeps the campaign going.

Every cell still runs the exact serial measurement protocol
(:func:`~repro.core.runner.run_cell`): sources, counters, verification,
and statuses are identical to ``jobs=1`` — only wall-clock parallelism
and the kill guarantee differ.  ``tests/test_executor.py`` pins that
equivalence.

Dispatch is **parent-driven**: instead of pre-queuing the whole campaign,
the parent hands out one ``(cell, attempt)`` task per free worker slot.
That is what lets the resilience layer act mid-campaign — a transiently
failed cell is re-dispatched after its deterministic backoff
(``spec.retries``), a cell whose worker died twice (a crash loop) falls
back to in-parent serial execution over the parent's own shared segment,
an open circuit breaker converts still-queued cells of the broken
(framework, kernel) combo into ``skipped`` results at zero cost, and
every finalized cell is durably appended to the checkpoint journal the
moment it completes.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import signal
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from ..errors import CellFailedError, TrialTimeoutError
from ..frameworks.base import KERNELS, Framework, Mode
from ..graphs.cache import GraphCache
from ..resilience.breaker import CircuitBreaker
from ..resilience.retry import RetryPolicy
from .results import ResultSet, RunResult
from .runner import _failed_result, _skip_span, _skipped_result, build_case, run_cell
from .sharedmem import SharedCase, SharedCaseHandle, attach_case
from .spec import BenchmarkSpec
from .telemetry import STATUS_ERROR, STATUS_TIMEOUT, Span, Telemetry

if TYPE_CHECKING:  # layering: the journal lives above repro.core
    from ..resilience.journal import CheckpointJournal

__all__ = ["run_suite_parallel", "DEFAULT_KILL_GRACE_SECONDS"]

#: Supervisor poll interval while waiting for worker messages.
_POLL_SECONDS = 0.05

#: Extra wall-clock headroom past a cell's summed trial budgets before the
#: parent hard-kills the worker (covers prepare/verify and IPC latency).
DEFAULT_KILL_GRACE_SECONDS = 2.0


@dataclass(frozen=True)
class _Cell:
    """One schedulable unit: a (graph, mode, kernel, framework) cell."""

    index: int
    graph: str
    mode: Mode
    kernel: str
    framework: str

    @property
    def label(self) -> str:
        return f"{self.mode.value}/{self.graph}/{self.kernel}/{self.framework}"


def _cell_budget(spec: BenchmarkSpec, kernel: str, grace: float) -> float:
    """Hard wall-clock budget for one cell (sum of trial deadlines + grace)."""
    return spec.trial_timeout * spec.num_trials(kernel) + grace


def _worker_main(
    slot: int,
    tasks,
    results,
    spec: BenchmarkSpec,
    handles: Mapping[str, SharedCaseHandle],
    frameworks: Mapping[str, Framework],
    track_memory: bool,
) -> None:
    """Worker loop: attach the shared corpus, then drain cells until sentinel.

    Runs on the worker's main thread, so ``run_cell``'s in-process SIGALRM
    deadline is armed and catches interruptible overruns without costing a
    process kill; the parent's hard kill is the backstop for the rest.
    """
    if hasattr(signal, "SIGTERM"):
        # Undo any graceful_shutdown handler inherited over fork: a worker
        # the parent terminates should just die, not raise CampaignAborted.
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    attached = {name: attach_case(handle) for name, handle in handles.items()}
    telemetry = Telemetry(track_memory=track_memory)
    try:
        while True:
            task = tasks.get()
            if task is None:
                results.put(("exit", slot))
                return
            cell, attempt = task
            results.put(("start", slot, cell.index, attempt))
            case = attached[cell.graph].case
            framework = frameworks[cell.framework]
            try:
                result = run_cell(
                    framework, cell.kernel, case, cell.mode, spec,
                    telemetry=telemetry, attempt=attempt,
                )
            except TrialTimeoutError as exc:
                result = _failed_result(
                    framework, cell.kernel, case, cell.mode, "timeout", exc
                )
            except Exception as exc:
                result = _failed_result(
                    framework, cell.kernel, case, cell.mode, "error", exc
                )
            spans = [span.as_dict() for span in telemetry.spans]
            telemetry.spans.clear()
            results.put(("done", slot, cell.index, attempt, result, spans))
    finally:
        for attachment in attached.values():
            attachment.close()


def _killed_cell_span(cell: _Cell, status: str, message: str, wall: float) -> Span:
    """Parent-side span for a cell whose worker never reported back."""
    span = Span(
        name="cell",
        attributes={
            "framework": cell.framework,
            "kernel": cell.kernel,
            "graph": cell.graph,
            "mode": cell.mode.value,
        },
        status=status,
        wall_seconds=wall,
    )
    span.error = {
        "type": "TrialTimeoutError" if status == STATUS_TIMEOUT else "WorkerCrash",
        "message": message,
        "traceback": "",
    }
    return span


def run_suite_parallel(
    frameworks: Iterable[Framework],
    graph_names: Iterable[str],
    kernels: Iterable[str] = KERNELS,
    modes: Iterable[Mode] = (Mode.BASELINE, Mode.OPTIMIZED),
    spec: BenchmarkSpec | None = None,
    jobs: int = 2,
    progress: Callable[[str], None] | None = None,
    telemetry: Telemetry | None = None,
    strict: bool = False,
    cache: GraphCache | None = None,
    kill_grace: float = DEFAULT_KILL_GRACE_SECONDS,
    journal: "CheckpointJournal | None" = None,
    completed: Mapping[tuple[str, str, str, str], RunResult] | None = None,
) -> ResultSet:
    """Run a campaign over a process pool; see the module docstring.

    Prefer calling ``run_suite(..., jobs=N)``, which dispatches here; this
    entry point additionally exposes ``kill_grace`` (headroom past a
    cell's trial budgets before the hard kill) for tests and benches.
    ``journal`` receives every finalized cell; ``completed`` (cell key →
    result, from a resumed journal) pre-fills those cells — they are
    neither re-executed nor re-journaled, and their graphs are not even
    exported if no other cell needs them.
    """
    spec = spec or BenchmarkSpec()
    tel = telemetry if telemetry is not None else Telemetry()
    framework_list = list(frameworks)
    frameworks_by_name = {fw.name: fw for fw in framework_list}
    graph_names = list(graph_names)
    kernels = list(kernels)
    modes = list(modes)
    completed = dict(completed or {})
    policy = RetryPolicy(retries=spec.retries)
    breaker = CircuitBreaker(spec.breaker_threshold)

    cells: list[_Cell] = []
    for graph_name in graph_names:
        for mode in modes:
            for kernel in kernels:
                for framework in framework_list:
                    cells.append(
                        _Cell(len(cells), graph_name, mode, kernel, framework.name)
                    )
    if not cells:
        return ResultSet()

    results_by_index: dict[int, RunResult] = {}
    for cell in cells:
        key = (cell.graph, cell.mode.value, cell.kernel, cell.framework)
        if key in completed:
            results_by_index[cell.index] = completed[key]
    total = len(cells)
    if len(results_by_index) == total:
        return ResultSet([results_by_index[index] for index in range(total)])

    runnable = [cell for cell in cells if cell.index not in results_by_index]
    needed_graphs = {cell.graph for cell in runnable}
    jobs = max(1, min(int(jobs), len(runnable)))

    # fork shares the already-imported interpreter state and is cheap;
    # spawn is the portable fallback (frameworks/spec pickle either way).
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    result_queue = ctx.Queue()
    retired_queues: list[object] = []

    shared: dict[str, SharedCase] = {}
    workers: dict[int, dict[str, object]] = {}

    #: Tasks ready to hand to a worker, in canonical order; retries rejoin
    #: here once their backoff elapses.
    pending: deque[tuple[_Cell, int]] = deque((cell, 0) for cell in runnable)
    #: Retries waiting out their deterministic backoff: (ready_at, cell, attempt).
    retry_waiting: list[tuple[float, _Cell, int]] = []
    #: Worker deaths per cell index — two means crash loop, fall back in-parent.
    deaths: dict[int, int] = {}
    #: (index, attempt) pairs already settled, so a kill racing a late
    #: "done" message for the same attempt cannot account a cell twice.
    accounted: set[tuple[int, int]] = set()
    completed_count = len(results_by_index)

    def spawn(slot: int) -> None:
        """Start (or replace) the worker in one slot.

        Dispatch is slot-addressed — each worker drains its own task
        queue, and the parent records an assignment the moment it puts the
        task, *before* the worker echoes "start".  A worker that dies the
        instant it picks a task up therefore can never lose the task: the
        parent's own bookkeeping, not a message that may still be in
        flight, says what the slot was running.  A replacement gets a
        fresh queue so it cannot consume a task already accounted as lost.
        """
        if slot in workers:
            retired_queues.append(workers[slot]["queue"])
        tasks = ctx.Queue()
        process = ctx.Process(
            target=_worker_main,
            args=(
                slot,
                tasks,
                result_queue,
                spec,
                {name: sc.handle for name, sc in shared.items()},
                frameworks_by_name,
                tel.track_memory,
            ),
            daemon=True,
        )
        process.start()
        workers[slot] = {
            "process": process,
            "queue": tasks,
            "cell": None,
            "attempt": 0,
            "deadline": None,
            "started": 0.0,
            "exited": False,
        }

    def record_skip(cell: _Cell) -> None:
        """Account a cell the open circuit breaker short-circuited."""
        nonlocal completed_count
        reason = breaker.reason(cell.framework, cell.kernel)
        result = _skipped_result(
            cell.framework, cell.kernel, cell.graph, cell.mode, reason
        )
        results_by_index[cell.index] = result
        completed_count += 1
        tel.ingest(
            _skip_span(cell.framework, cell.kernel, cell.graph, cell.mode, reason)
        )
        if journal is not None:
            journal.record(result)

    def prune_open_combos() -> None:
        """Convert still-queued cells of newly opened combos into skips."""
        for task in list(pending):
            if breaker.is_open(task[0].framework, task[0].kernel):
                pending.remove(task)
                record_skip(task[0])

    def finalize(cell: _Cell, result: RunResult, attempt: int) -> None:
        """Commit a cell's final result: journal, breaker, strict check."""
        nonlocal completed_count
        result.attempts = attempt + 1
        results_by_index[cell.index] = result
        completed_count += 1
        opened = breaker.record(cell.framework, cell.kernel, result.ok)
        if journal is not None:
            journal.record(result)
        if opened:
            prune_open_combos()
        if strict and not result.ok:
            if result.status == STATUS_TIMEOUT:
                raise TrialTimeoutError(f"cell {cell.label}: {result.error}")
            raise CellFailedError(f"cell {cell.label} failed: {result.error}")

    def settle(cell: _Cell, result: RunResult, attempt: int) -> None:
        """Route one executed attempt: finalize it or schedule a retry."""
        if result.ok or not policy.should_retry(result.status, result.error, attempt):
            finalize(cell, result, attempt)
            return
        retry_waiting.append(
            (time.monotonic() + policy.backoff_seconds(attempt), cell, attempt + 1)
        )

    def run_in_parent(cell: _Cell, attempt: int) -> float:
        """Crash-loop fallback: execute the cell in this process.

        Two dead workers in a row for one cell means dispatching a third
        is likely to burn another process for nothing; the parent attaches
        to its own shared segment (zero-copy) and runs the cell serially
        instead.  Returns the elapsed wall time so the supervisor can
        extend the deadlines of workers it could not watch meanwhile.
        """
        if progress is not None:
            progress(f"{cell.label} (in-parent)")
        begun = time.monotonic()
        attachment = attach_case(shared[cell.graph].handle)
        try:
            framework = frameworks_by_name[cell.framework]
            case = attachment.case
            try:
                result = run_cell(
                    framework, cell.kernel, case, cell.mode, spec,
                    telemetry=tel, attempt=attempt,
                )
            except TrialTimeoutError as exc:
                result = _failed_result(
                    framework, cell.kernel, case, cell.mode, "timeout", exc
                )
            except Exception as exc:
                result = _failed_result(
                    framework, cell.kernel, case, cell.mode, "error", exc
                )
        finally:
            attachment.close()
        settle(cell, result, attempt)
        return time.monotonic() - begun

    def next_task() -> tuple[_Cell, int] | None:
        """Pop the next dispatchable task, skipping open-breaker cells."""
        while pending:
            cell, attempt = pending.popleft()
            if breaker.is_open(cell.framework, cell.kernel):
                record_skip(cell)
                continue
            return cell, attempt
        return None

    def dispatch() -> None:
        """Assign pending tasks to idle live workers, slot by slot."""
        for state in workers.values():
            if (
                state["cell"] is not None
                or state["exited"]
                or not state["process"].is_alive()
            ):
                continue
            task = next_task()
            if task is None:
                return
            cell, attempt = task
            state["cell"] = cell
            state["attempt"] = attempt
            state["started"] = time.monotonic()
            state["deadline"] = (
                state["started"] + _cell_budget(spec, cell.kernel, kill_grace)
                if spec.trial_timeout is not None
                else None
            )
            state["queue"].put(task)

    try:
        # Build the still-needed corpus once (cache-aware) and publish it.
        for graph_name in graph_names:
            if graph_name in needed_graphs:
                shared[graph_name] = SharedCase(build_case(graph_name, spec, cache))

        for slot in range(jobs):
            spawn(slot)
        dispatch()

        while completed_count < total:
            # Drain every queued message before supervising deadlines, so
            # a "done" that arrived while the parent was busy (e.g. an
            # in-parent fallback run) is never mistaken for an overrun.
            messages = []
            try:
                messages.append(result_queue.get(timeout=_POLL_SECONDS))
            except queue_mod.Empty:
                pass
            while True:
                try:
                    messages.append(result_queue.get_nowait())
                except queue_mod.Empty:
                    break

            for message in messages:
                kind = message[0]
                if kind == "start":
                    # The assignment is already recorded (dispatch did it);
                    # the echo just restarts the deadline clock so queue
                    # latency never eats into a cell's kill budget.
                    _, slot, index, attempt = message
                    state = workers[slot]
                    if state["cell"] is not None and state["cell"].index == index:
                        state["started"] = time.monotonic()
                        if state["deadline"] is not None:
                            state["deadline"] = state["started"] + _cell_budget(
                                spec, cells[index].kernel, kill_grace
                            )
                    if progress is not None:
                        progress(cells[index].label)
                elif kind == "done":
                    _, slot, index, attempt, result, span_records = message
                    state = workers[slot]
                    if state["cell"] is not None and state["cell"].index == index:
                        state["cell"] = None
                        state["deadline"] = None
                    if (index, attempt) in accounted:
                        # Raced with a hard kill that already accounted it.
                        continue
                    accounted.add((index, attempt))
                    for record in span_records:
                        tel.ingest(Span.from_dict(record))
                    settle(cells[index], result, attempt)
                elif kind == "exit":
                    workers[message[1]]["exited"] = True

            now = time.monotonic()
            for slot in list(workers):
                state = workers[slot]
                process = state["process"]
                cell = state["cell"]
                if cell is None:
                    # A worker that died between cells (or failed to start)
                    # is replaced so dispatch keeps flowing; exit code 0
                    # means its "exit" message is simply still in flight.
                    if not process.is_alive() and not state["exited"]:
                        if process.exitcode == 0:
                            state["exited"] = True
                        elif completed_count < total:
                            spawn(slot)
                    continue
                overdue = state["deadline"] is not None and now > state["deadline"]
                died = not process.is_alive()
                if not overdue and not died:
                    continue
                if overdue and process.is_alive():
                    process.terminate()
                    process.join(1.0)
                    if process.is_alive():  # pragma: no cover - SIGTERM blocked
                        process.kill()
                        process.join(1.0)
                    status = STATUS_TIMEOUT
                    message_text = (
                        f"hard deadline: cell exceeded "
                        f"{_cell_budget(spec, cell.kernel, kill_grace):.6g}s "
                        f"({spec.num_trials(cell.kernel)} trial(s) x "
                        f"{spec.trial_timeout:.6g}s + {kill_grace:.6g}s grace); "
                        "worker killed"
                    )
                else:
                    status = STATUS_ERROR
                    message_text = (
                        f"worker process died mid-cell "
                        f"(exit code {process.exitcode})"
                    )
                attempt = state["attempt"]
                state["cell"] = None
                state["deadline"] = None
                if (cell.index, attempt) not in accounted:
                    accounted.add((cell.index, attempt))
                    if died:
                        deaths[cell.index] = deaths.get(cell.index, 0) + 1
                    lost = RunResult(
                        framework=cell.framework,
                        kernel=cell.kernel,
                        graph=cell.graph,
                        mode=cell.mode,
                        trial_seconds=[],
                        verified=False,
                        status=status,
                        error=message_text,
                    )
                    tel.ingest(
                        _killed_cell_span(
                            cell, status, message_text, now - state["started"]
                        )
                    )
                    settle(cell, lost, attempt)
                if completed_count < total:
                    spawn(slot)

            # Release retries whose deterministic backoff has elapsed.
            now = time.monotonic()
            for entry in [e for e in retry_waiting if e[0] <= now]:
                retry_waiting.remove(entry)
                _, cell, attempt = entry
                if breaker.is_open(cell.framework, cell.kernel):
                    record_skip(cell)
                elif deaths.get(cell.index, 0) >= 2:
                    inline_elapsed = run_in_parent(cell, attempt)
                    for state in workers.values():
                        if state["deadline"] is not None:
                            state["deadline"] += inline_elapsed
                else:
                    pending.append((cell, attempt))

            dispatch()

        # Campaign complete: send sentinels, let workers drain and exit.
        for state in workers.values():
            state["queue"].put(None)
        for state in workers.values():
            process = state["process"]
            process.join(5.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(1.0)
    finally:
        for state in workers.values():
            process = state["process"]
            if process.is_alive():
                process.terminate()
                process.join(1.0)
        queues = [state["queue"] for state in workers.values()]
        for q in [result_queue, *queues, *retired_queues]:
            q.close()
            q.cancel_join_thread()
        for shared_case in shared.values():
            shared_case.close(unlink=True)

    return ResultSet([results_by_index[index] for index in range(total)])
