"""Parallel campaign executors: warm process pools and thread pools.

``run_suite`` executes the paper's 6×6×5×2 campaign serially in one
process; at that point campaign wall time, not kernel time, bounds how
fast the reproduction can iterate.  This module shards the independent
(framework, kernel, graph, mode) cells across a pool of workers.  Two
pool flavors share one scheduling core:

* ``run_suite_parallel`` — **process pool** (:class:`~repro.core.pool.
  WorkerPool`).  Workers are *warm*: spawned once per pool, reusable
  across campaigns via a pool handle, configured per campaign by
  message, attaching the shared-memory corpus lazily
  (:mod:`repro.core.sharedmem`) and unpickling frameworks on first use.
  Process isolation turns ``BenchmarkSpec.trial_timeout`` into a
  **hard** deadline: a worker stuck inside one long C call is killed by
  the parent once its cell exceeds its trial budgets, the cell is
  recorded as a ``timeout`` result, and a respawned worker keeps the
  campaign going.
* ``run_suite_threads`` — **thread pool** (``spec.pool == "threads"``).
  Worker threads share the parent's address space, so the corpus is
  never published, pickled, or attached at all — the cheapest possible
  dispatch for GIL-releasing NumPy kernels.  The trade is isolation:
  threads cannot be killed, so deadlines degrade to the serial soft
  semantics (post-hoc detection off the main thread) and an injected
  process crash takes the whole campaign with it.

Dispatch is **batched** (:mod:`repro.core.batching`): the parent hands a
worker a contiguous run of cells per message, sized by a trial-count
cost model, so queue/pickle/wakeup overhead is paid per batch while
everything observable stays per-cell — workers echo ``start`` and
``cell`` messages per member, telemetry spans are per cell, the journal
records cells individually, and retry/breaker decisions act on cells.
Timeout-sensitive cells are planned as singleton batches so the hard
kill can never destroy a sibling queued behind a hung cell.

Every cell still runs the exact serial measurement protocol
(:func:`~repro.core.runner.run_cell`): sources, counters, verification,
and statuses are identical to ``jobs=1`` — only wall-clock parallelism
and the kill guarantee differ.  ``tests/test_executor_matrix.py`` pins
that equivalence across serial, per-cell process, batched process, and
thread execution.

Dispatch is **parent-driven**: instead of pre-queuing the whole
campaign, the parent hands out one batch per free worker slot and keeps
its own record of every assignment.  That is what lets the resilience
layer act mid-campaign: a worker that dies mid-batch loses only the
in-flight cell (the rest of its batch is re-dispatched), a transiently
failed cell re-enters the queue after its deterministic backoff, a cell
whose worker died twice falls back to in-parent execution, an open
circuit breaker prunes its combo's cells out of still-queued batches as
``skipped`` results, and every finalized cell is durably appended to
the checkpoint journal the moment it completes.

The graph axis may include file-backed datasets (``file:``/``dataset:``
references, :mod:`repro.graphs.datasets`) with no executor-visible
difference: the parent ingests each file exactly once in ``build_case``
and publishes the resulting CSR views through the shared-memory corpus
like any generated graph — workers never touch the filesystem.
"""

from __future__ import annotations

import queue as queue_mod
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from ..errors import CellFailedError, TrialTimeoutError
from ..frameworks.base import KERNELS, Framework, Mode
from ..graphs.cache import GraphCache
from ..resilience.breaker import CircuitBreaker
from ..resilience.retry import RetryPolicy
from .batching import Cell, plan_batches
from .pool import WorkerPool
from .results import ResultSet, RunResult
from .runner import _failed_result, _skip_span, _skipped_result, build_case, run_cell
from .sharedmem import SharedCase, attach_case
from .spec import BenchmarkSpec
from .telemetry import STATUS_ERROR, STATUS_TIMEOUT, Span, Telemetry

if TYPE_CHECKING:  # layering: the journal lives above repro.core
    from ..resilience.journal import CheckpointJournal

__all__ = [
    "run_suite_parallel",
    "run_suite_threads",
    "DEFAULT_KILL_GRACE_SECONDS",
]

#: Supervisor poll interval while waiting for worker messages.
_POLL_SECONDS = 0.05

#: Extra wall-clock headroom past a cell's summed trial budgets before the
#: parent hard-kills the worker (covers prepare/verify and IPC latency).
DEFAULT_KILL_GRACE_SECONDS = 2.0

#: One assigned batch: the (cell, attempt) pairs a worker has not yet
#: reported back, in execution order — the head is the in-flight cell.
_Assignment = "deque[tuple[Cell, int]]"


def _cell_budget(spec: BenchmarkSpec, kernel: str, grace: float) -> float:
    """Hard wall-clock budget for one cell (sum of trial deadlines + grace)."""
    return spec.trial_timeout * spec.num_trials(kernel) + grace


def _enumerate_cells(
    framework_list: list[Framework],
    graph_names: list[str],
    modes: list[Mode],
    kernels: list[str],
) -> list[Cell]:
    """The campaign grid in canonical cell order (graph→mode→kernel→fw)."""
    cells: list[Cell] = []
    for graph_name in graph_names:
        for mode in modes:
            for kernel in kernels:
                for framework in framework_list:
                    cells.append(
                        Cell(len(cells), graph_name, mode, kernel, framework.name)
                    )
    return cells


def _killed_cell_span(cell: Cell, status: str, message: str, wall: float) -> Span:
    """Parent-side span for a cell whose worker never reported back."""
    span = Span(
        name="cell",
        attributes={
            "framework": cell.framework,
            "kernel": cell.kernel,
            "graph": cell.graph,
            "mode": cell.mode.value,
        },
        status=status,
        wall_seconds=wall,
    )
    span.error = {
        "type": "TrialTimeoutError" if status == STATUS_TIMEOUT else "WorkerCrash",
        "message": message,
        "traceback": "",
    }
    return span


class _CampaignState:
    """Per-cell accounting shared by the process- and thread-pool paths.

    Owns the pieces that must behave identically regardless of transport:
    canonical result assembly, the pending batch queue, retry scheduling,
    circuit-breaker skips (including pruning queued batches), journal
    appends, and strict-mode fail-fast.
    """

    def __init__(
        self,
        cells: list[Cell],
        spec: BenchmarkSpec,
        tel: Telemetry,
        journal: "CheckpointJournal | None",
        strict: bool,
        completed: Mapping[tuple[str, str, str, str], RunResult] | None,
        on_result: Callable[[Cell, RunResult], None] | None = None,
    ) -> None:
        self.cells = cells
        self.spec = spec
        self.tel = tel
        self.journal = journal
        self.strict = strict
        self.on_result = on_result
        self.policy = RetryPolicy(retries=spec.retries)
        self.breaker = CircuitBreaker(spec.breaker_threshold)
        self.results_by_index: dict[int, RunResult] = {}
        completed = dict(completed or {})
        for cell in cells:
            key = (cell.graph, cell.mode.value, cell.kernel, cell.framework)
            if key in completed:
                self.results_by_index[cell.index] = completed[key]
        self.completed_count = len(self.results_by_index)
        #: Batches ready to hand to a worker, in canonical order; retries
        #: rejoin here (as singleton batches) once their backoff elapses.
        self.pending: deque[list[tuple[Cell, int]]] = deque()
        #: Retries waiting out their backoff: (ready_at, cell, attempt).
        self.retry_waiting: list[tuple[float, Cell, int]] = []
        #: (index, attempt) pairs already settled, so a kill racing a late
        #: "cell" message for the same attempt cannot account a cell twice.
        self.accounted: set[tuple[int, int]] = set()

    @property
    def total(self) -> int:
        return len(self.cells)

    @property
    def done(self) -> bool:
        return self.completed_count >= self.total

    def runnable(self) -> list[Cell]:
        return [c for c in self.cells if c.index not in self.results_by_index]

    def queue_batches(self, batches: Iterable[list[Cell]]) -> None:
        for batch in batches:
            self.pending.append([(cell, 0) for cell in batch])

    def record_skip(self, cell: Cell) -> None:
        """Account a cell the open circuit breaker short-circuited."""
        reason = self.breaker.reason(cell.framework, cell.kernel)
        result = _skipped_result(
            cell.framework, cell.kernel, cell.graph, cell.mode, reason
        )
        self.results_by_index[cell.index] = result
        self.completed_count += 1
        self.tel.ingest(
            _skip_span(cell.framework, cell.kernel, cell.graph, cell.mode, reason)
        )
        if self.journal is not None:
            self.journal.record(result)
        if self.on_result is not None:
            self.on_result(cell, result)

    def prune_open_batches(self) -> None:
        """Strip newly opened combos out of still-queued batches.

        Batch members are pruned *individually*: surviving cells of a
        batch stay batched, and a batch emptied entirely is dropped.
        """
        kept: deque[list[tuple[Cell, int]]] = deque()
        for batch in self.pending:
            surviving = []
            for cell, attempt in batch:
                if self.breaker.is_open(cell.framework, cell.kernel):
                    self.record_skip(cell)
                else:
                    surviving.append((cell, attempt))
            if surviving:
                kept.append(surviving)
        self.pending = kept

    def finalize(self, cell: Cell, result: RunResult, attempt: int) -> None:
        """Commit a cell's final result: journal, breaker, strict check.

        Strict mode raises *before* committing anything, matching the
        serial path: the failing cell is never journaled, so a resumed
        campaign re-executes it instead of restoring the failure.
        """
        if self.strict and not result.ok:
            if result.status == STATUS_TIMEOUT:
                raise TrialTimeoutError(f"cell {cell.label}: {result.error}")
            raise CellFailedError(f"cell {cell.label} failed: {result.error}")
        result.attempts = attempt + 1
        self.results_by_index[cell.index] = result
        self.completed_count += 1
        opened = self.breaker.record(cell.framework, cell.kernel, result.ok)
        if self.journal is not None:
            self.journal.record(result)
        if self.on_result is not None:
            # After the journal append: a streamed result is always at
            # least as durable as what a resume would reconstruct.
            self.on_result(cell, result)
        if opened:
            self.prune_open_batches()

    def settle(self, cell: Cell, result: RunResult, attempt: int) -> None:
        """Route one executed attempt: finalize it or schedule a retry."""
        if result.ok or not self.policy.should_retry(
            result.status, result.error, attempt
        ):
            self.finalize(cell, result, attempt)
            return
        self.retry_waiting.append(
            (time.monotonic() + self.policy.backoff_seconds(attempt), cell, attempt + 1)
        )

    def next_batch(self) -> list[tuple[Cell, int]] | None:
        """Pop the next dispatchable batch, skipping open-breaker cells."""
        while self.pending:
            batch = self.pending.popleft()
            surviving = []
            for cell, attempt in batch:
                if self.breaker.is_open(cell.framework, cell.kernel):
                    self.record_skip(cell)
                else:
                    surviving.append((cell, attempt))
            if surviving:
                return surviving
        return None

    def due_retries(self, now: float) -> list[tuple[Cell, int]]:
        """Pop retries whose backoff has elapsed (breaker-skips applied)."""
        due = []
        for entry in [e for e in self.retry_waiting if e[0] <= now]:
            self.retry_waiting.remove(entry)
            _, cell, attempt = entry
            if self.breaker.is_open(cell.framework, cell.kernel):
                self.record_skip(cell)
            else:
                due.append((cell, attempt))
        return due

    def result_set(self) -> ResultSet:
        return ResultSet(
            [self.results_by_index[index] for index in range(self.total)]
        )


def run_suite_parallel(
    frameworks: Iterable[Framework],
    graph_names: Iterable[str],
    kernels: Iterable[str] = KERNELS,
    modes: Iterable[Mode] = (Mode.BASELINE, Mode.OPTIMIZED),
    spec: BenchmarkSpec | None = None,
    jobs: int = 2,
    progress: Callable[[str], None] | None = None,
    telemetry: Telemetry | None = None,
    strict: bool = False,
    cache: GraphCache | None = None,
    kill_grace: float = DEFAULT_KILL_GRACE_SECONDS,
    journal: "CheckpointJournal | None" = None,
    completed: Mapping[tuple[str, str, str, str], RunResult] | None = None,
    pool: WorkerPool | None = None,
    on_result: Callable[[Cell, RunResult], None] | None = None,
) -> ResultSet:
    """Run a campaign over a process pool; see the module docstring.

    Prefer calling ``run_suite(..., jobs=N)``, which dispatches here; this
    entry point additionally exposes ``kill_grace`` (headroom past a
    cell's trial budgets before the hard kill) and ``pool`` — a warm
    :class:`~repro.core.pool.WorkerPool` to reuse across campaigns (the
    caller keeps ownership; without one, a pool is created and shut down
    within this call).  ``journal`` receives every finalized cell;
    ``completed`` (cell key → result, from a resumed journal) pre-fills
    those cells — they are neither re-executed nor re-journaled, and
    their graphs are not even exported if no other cell needs them.
    ``on_result`` is invoked in the parent, once per finalized cell
    (including breaker skips, excluding pre-filled ``completed`` cells),
    right after the journal append — the benchmark service streams each
    cell to subscribed clients from exactly this point.
    """
    spec = spec or BenchmarkSpec()
    tel = telemetry if telemetry is not None else Telemetry()
    framework_list = list(frameworks)
    frameworks_by_name = {fw.name: fw for fw in framework_list}
    cells = _enumerate_cells(
        framework_list, list(graph_names), list(modes), list(kernels)
    )
    if not cells:
        return ResultSet()

    state = _CampaignState(cells, spec, tel, journal, strict, completed, on_result)
    if state.done:
        return state.result_set()
    runnable = state.runnable()
    needed_graphs = {cell.graph for cell in runnable}

    own_pool = pool is None
    worker_count = (
        max(1, min(int(jobs), len(runnable))) if own_pool else pool.jobs
    )
    state.queue_batches(plan_batches(runnable, spec, worker_count, spec.batch_size))

    shared: dict[str, SharedCase] = {}
    #: Slot → the batch tail the worker has not reported back yet.
    assigned: dict[int, deque[tuple[Cell, int]]] = {}
    started: dict[int, float] = {}
    deadline: dict[int, float | None] = {}
    #: Worker deaths per cell index — two means crash loop, fall back in-parent.
    deaths: dict[int, int] = {}
    clean_exit = False

    def batch_deadline(batch: Iterable[tuple[Cell, int]], now: float) -> float | None:
        if spec.trial_timeout is None:
            return None
        return now + sum(
            _cell_budget(spec, cell.kernel, kill_grace) for cell, _ in batch
        )

    def dispatch() -> None:
        """Assign pending batches to idle live workers, slot by slot."""
        for slot in assigned:
            if assigned[slot] or not pool.is_alive(slot):
                continue
            batch = state.next_batch()
            if batch is None:
                return
            now = time.monotonic()
            assigned[slot] = deque(batch)
            started[slot] = now
            deadline[slot] = batch_deadline(batch, now)
            pool.submit(slot, batch)

    def run_in_parent(cell: Cell, attempt: int) -> float:
        """Crash-loop fallback: execute the cell in this process.

        Two dead workers in a row for one cell means dispatching a third
        is likely to burn another process for nothing; the parent attaches
        to its own shared segment (zero-copy) and runs the cell serially
        instead.  Returns the elapsed wall time so the supervisor can
        extend the deadlines of workers it could not watch meanwhile.
        """
        if progress is not None:
            progress(f"{cell.label} (in-parent)")
        begun = time.monotonic()
        attachment = attach_case(shared[cell.graph].handle)
        try:
            framework = frameworks_by_name[cell.framework]
            case = attachment.case
            try:
                result = run_cell(
                    framework, cell.kernel, case, cell.mode, spec,
                    telemetry=tel, attempt=attempt,
                )
            except TrialTimeoutError as exc:
                result = _failed_result(
                    framework, cell.kernel, case, cell.mode, "timeout", exc
                )
            except Exception as exc:
                result = _failed_result(
                    framework, cell.kernel, case, cell.mode, "error", exc
                )
        finally:
            attachment.close()
        state.settle(cell, result, attempt)
        return time.monotonic() - begun

    try:
        # Build the still-needed corpus once (cache-aware) and publish it.
        for graph_name in needed_graphs:
            shared[graph_name] = SharedCase(
                build_case(graph_name, spec, cache, telemetry=tel)
            )

        if own_pool:
            pool = WorkerPool(worker_count)
        pool.begin_campaign(
            spec,
            {name: sc.handle for name, sc in shared.items()},
            frameworks_by_name,
            tel.track_memory,
        )
        for slot in range(pool.jobs):
            assigned[slot] = deque()
            started[slot] = 0.0
            deadline[slot] = None
        dispatch()

        while not state.done:
            # Drain every queued message before supervising deadlines, so
            # a "cell" that arrived while the parent was busy (e.g. an
            # in-parent fallback run) is never mistaken for an overrun.
            messages = []
            message = pool.get(timeout=_POLL_SECONDS)
            if message is not None:
                messages.append(message)
                while True:
                    message = pool.get_nowait()
                    if message is None:
                        break
                    messages.append(message)

            for message in messages:
                kind = message[0]
                if kind == "start":
                    # The assignment is already recorded (dispatch did it);
                    # the echo just restarts the deadline clock so queue
                    # latency and batch predecessors never eat into a
                    # cell's kill budget.
                    _, slot, index, attempt = message
                    batch = assigned.get(slot)
                    if batch and batch[0][0].index == index:
                        now = time.monotonic()
                        started[slot] = now
                        if spec.trial_timeout is not None:
                            deadline[slot] = now + _cell_budget(
                                spec, cells[index].kernel, kill_grace
                            )
                    if progress is not None:
                        progress(cells[index].label)
                elif kind == "cell":
                    _, slot, index, attempt, result, span_records = message
                    batch = assigned.get(slot)
                    if batch and batch[0][0].index == index:
                        batch.popleft()
                        now = time.monotonic()
                        started[slot] = now
                        deadline[slot] = (
                            batch_deadline(batch, now) if batch else None
                        )
                    if (index, attempt) in state.accounted:
                        # Raced with a hard kill that already accounted it.
                        continue
                    state.accounted.add((index, attempt))
                    for record in span_records:
                        tel.ingest(Span.from_dict(record))
                    state.settle(cells[index], result, attempt)
                # "exit" messages only occur during shutdown; ignore here.

            now = time.monotonic()
            for slot in list(assigned):
                batch = assigned[slot]
                alive = pool.is_alive(slot)
                if not batch:
                    # A worker that died while idle is replaced so dispatch
                    # keeps flowing.
                    if not alive and not state.done:
                        pool.respawn(slot)
                    continue
                overdue = deadline[slot] is not None and now > deadline[slot]
                if not overdue and alive:
                    continue
                died = not alive
                if overdue and alive:
                    status = STATUS_TIMEOUT
                    cell = batch[0][0]
                    message_text = (
                        f"hard deadline: cell exceeded "
                        f"{_cell_budget(spec, cell.kernel, kill_grace):.6g}s "
                        f"({spec.num_trials(cell.kernel)} trial(s) x "
                        f"{spec.trial_timeout:.6g}s + {kill_grace:.6g}s grace); "
                        "worker killed"
                    )
                else:
                    status = STATUS_ERROR
                    message_text = (
                        f"worker process died mid-cell "
                        f"(exit code {pool.exitcode(slot)})"
                    )
                # Only the in-flight head is lost; the rest of the batch
                # was never started and is re-dispatched untouched.
                head_cell, head_attempt = batch.popleft()
                tail = list(batch)
                assigned[slot] = deque()
                deadline[slot] = None
                if tail:
                    state.pending.appendleft(tail)
                if (head_cell.index, head_attempt) not in state.accounted:
                    state.accounted.add((head_cell.index, head_attempt))
                    if died:
                        deaths[head_cell.index] = deaths.get(head_cell.index, 0) + 1
                    lost = RunResult(
                        framework=head_cell.framework,
                        kernel=head_cell.kernel,
                        graph=head_cell.graph,
                        mode=head_cell.mode,
                        trial_seconds=[],
                        verified=False,
                        status=status,
                        error=message_text,
                    )
                    tel.ingest(
                        _killed_cell_span(
                            head_cell, status, message_text, now - started[slot]
                        )
                    )
                    state.settle(head_cell, lost, head_attempt)
                if not state.done:
                    pool.respawn(slot)

            # Release retries whose deterministic backoff has elapsed.
            for cell, attempt in state.due_retries(time.monotonic()):
                if deaths.get(cell.index, 0) >= 2:
                    inline_elapsed = run_in_parent(cell, attempt)
                    for slot in deadline:
                        if deadline[slot] is not None:
                            deadline[slot] += inline_elapsed
                else:
                    state.pending.append([(cell, attempt)])

            dispatch()

        clean_exit = True
    finally:
        if own_pool:
            if pool is not None:
                pool.shutdown()
        elif pool is not None and (not clean_exit or any(assigned.values())):
            # The caller's warm pool survives an aborted campaign, but its
            # workers may be mid-cell: replace them so the next campaign
            # starts clean (stale messages are stamp-filtered).
            pool.reset()
        for shared_case in shared.values():
            shared_case.close(unlink=True)

    return state.result_set()


def _thread_worker(
    slot: int,
    tasks: "queue_mod.Queue",
    results: "queue_mod.Queue",
    spec: BenchmarkSpec,
    cases: Mapping[str, object],
    frameworks: Mapping[str, Framework],
    track_memory: bool,
) -> None:
    """Thread-pool worker loop: drain batches until the sentinel.

    Runs off the main thread, so per-trial deadlines degrade to the soft
    post-hoc check (see :class:`~repro.core.telemetry.TrialDeadline`) —
    an over-budget trial is still recorded as a timeout, it just cannot
    be interrupted mid-flight.
    """
    telemetry = Telemetry(track_memory=track_memory)
    while True:
        batch = tasks.get()
        if batch is None:
            return
        for cell, attempt in batch:
            results.put(("start", slot, cell.index, attempt))
            framework = frameworks[cell.framework]
            case = cases[cell.graph]
            try:
                result = run_cell(
                    framework, cell.kernel, case, cell.mode, spec,
                    telemetry=telemetry, attempt=attempt,
                )
            except TrialTimeoutError as exc:
                result = _failed_result(
                    framework, cell.kernel, case, cell.mode, "timeout", exc
                )
            except Exception as exc:
                result = _failed_result(
                    framework, cell.kernel, case, cell.mode, "error", exc
                )
            spans = [span.as_dict() for span in telemetry.spans]
            telemetry.spans.clear()
            results.put(("cell", slot, cell.index, attempt, result, spans))
        results.put(("idle", slot))


def run_suite_threads(
    frameworks: Iterable[Framework],
    graph_names: Iterable[str],
    kernels: Iterable[str] = KERNELS,
    modes: Iterable[Mode] = (Mode.BASELINE, Mode.OPTIMIZED),
    spec: BenchmarkSpec | None = None,
    jobs: int = 2,
    progress: Callable[[str], None] | None = None,
    telemetry: Telemetry | None = None,
    strict: bool = False,
    cache: GraphCache | None = None,
    journal: "CheckpointJournal | None" = None,
    completed: Mapping[tuple[str, str, str, str], RunResult] | None = None,
    on_result: Callable[[Cell, RunResult], None] | None = None,
) -> ResultSet:
    """Run a campaign over a pool of worker *threads* (``--pool threads``).

    The corpus lives once in this process and is shared by reference —
    no shared-memory publication, no pickling, no process spawn.  Python
    kernels that release the GIL inside NumPy overlap on multiple cores;
    pure-bytecode kernels serialize on the GIL but still benefit from the
    near-zero dispatch cost.  Resilience semantics match the process pool
    except where isolation is physically required: threads cannot be
    hard-killed (deadlines are soft, crash-loop fallback never triggers)
    and an injected process crash is fatal to the whole campaign.
    """
    spec = spec or BenchmarkSpec()
    tel = telemetry if telemetry is not None else Telemetry()
    framework_list = list(frameworks)
    frameworks_by_name = {fw.name: fw for fw in framework_list}
    cells = _enumerate_cells(
        framework_list, list(graph_names), list(modes), list(kernels)
    )
    if not cells:
        return ResultSet()

    state = _CampaignState(cells, spec, tel, journal, strict, completed, on_result)
    if state.done:
        return state.result_set()
    runnable = state.runnable()
    needed_graphs = {cell.graph for cell in runnable}
    jobs = max(1, min(int(jobs), len(runnable)))
    state.queue_batches(plan_batches(runnable, spec, jobs, spec.batch_size))

    # The corpus is built once and shared by reference: the GraphCase
    # arrays are read-only by convention and every kernel allocates its
    # own outputs, exactly as in the serial path.
    cases = {
        name: build_case(name, spec, cache, telemetry=tel)
        for name in needed_graphs
    }

    results_q: "queue_mod.Queue" = queue_mod.Queue()
    task_queues = {slot: queue_mod.Queue() for slot in range(jobs)}
    busy = {slot: False for slot in range(jobs)}
    threads = [
        threading.Thread(
            target=_thread_worker,
            args=(
                slot,
                task_queues[slot],
                results_q,
                spec,
                cases,
                frameworks_by_name,
                tel.track_memory,
            ),
            daemon=True,
        )
        for slot in range(jobs)
    ]
    for thread in threads:
        thread.start()

    def dispatch() -> None:
        for slot in busy:
            if busy[slot]:
                continue
            batch = state.next_batch()
            if batch is None:
                return
            busy[slot] = True
            task_queues[slot].put(batch)

    try:
        dispatch()
        while not state.done:
            try:
                message = results_q.get(timeout=_POLL_SECONDS)
            except queue_mod.Empty:
                message = None
            if message is not None:
                kind = message[0]
                if kind == "start":
                    if progress is not None:
                        progress(cells[message[2]].label)
                elif kind == "cell":
                    _, slot, index, attempt, result, span_records = message
                    state.accounted.add((index, attempt))
                    for record in span_records:
                        tel.ingest(Span.from_dict(record))
                    state.settle(cells[index], result, attempt)
                elif kind == "idle":
                    busy[message[1]] = False

            for cell, attempt in state.due_retries(time.monotonic()):
                state.pending.append([(cell, attempt)])
            dispatch()
    finally:
        for slot in task_queues:
            task_queues[slot].put(None)
        for thread in threads:
            # Busy threads finish their current batch first; they are
            # daemons, so an abandoned (strict-abort) campaign never
            # blocks interpreter exit on them.
            thread.join(timeout=5.0)

    return state.result_set()
