"""Process-pool campaign executor: shards cells across worker processes.

``run_suite`` executes the paper's 6×6×5×2 campaign serially in one
process; at that point campaign wall time, not kernel time, bounds how
fast the reproduction can iterate.  This module shards the independent
(framework, kernel, graph, mode) cells across a pool of worker processes:

* the graph corpus is built **once** per graph in the parent (optionally
  through the persistent :class:`~repro.graphs.cache.GraphCache`) and
  published to workers via :mod:`repro.core.sharedmem` — workers attach
  zero-copy read-only views, so memory stays one corpus regardless of
  worker count and no CSR array is ever pickled;
* workers stream ``start`` / ``done`` messages (results plus telemetry
  span records) back over a queue; the parent merges spans into the one
  :class:`~repro.core.telemetry.Telemetry` collector and assembles the
  :class:`~repro.core.results.ResultSet` in canonical cell order, so the
  output is byte-for-byte independent of completion order;
* process isolation turns ``BenchmarkSpec.trial_timeout`` into a **hard**
  deadline: the in-worker ``SIGALRM`` deadline still catches interruptible
  overruns cheaply, but a worker stuck inside one long C call — which no
  in-process mechanism can stop (see ``TrialDeadline``) — is killed by the
  parent once the cell exceeds its trial budgets, the cell is recorded as
  a ``timeout`` result, and a replacement worker keeps the campaign going.

Every cell still runs the exact serial measurement protocol
(:func:`~repro.core.runner.run_cell`): sources, counters, verification,
and statuses are identical to ``jobs=1`` — only wall-clock parallelism
and the kill guarantee differ.  ``tests/test_executor.py`` pins that
equivalence.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from ..errors import CellFailedError, TrialTimeoutError
from ..frameworks.base import KERNELS, Framework, Mode
from ..graphs.cache import GraphCache
from .results import ResultSet, RunResult
from .runner import _failed_result, build_case, run_cell
from .sharedmem import SharedCase, SharedCaseHandle, attach_case
from .spec import BenchmarkSpec
from .telemetry import STATUS_ERROR, STATUS_TIMEOUT, Span, Telemetry

__all__ = ["run_suite_parallel", "DEFAULT_KILL_GRACE_SECONDS"]

#: Supervisor poll interval while waiting for worker messages.
_POLL_SECONDS = 0.05

#: Extra wall-clock headroom past a cell's summed trial budgets before the
#: parent hard-kills the worker (covers prepare/verify and IPC latency).
DEFAULT_KILL_GRACE_SECONDS = 2.0


@dataclass(frozen=True)
class _Cell:
    """One schedulable unit: a (graph, mode, kernel, framework) cell."""

    index: int
    graph: str
    mode: Mode
    kernel: str
    framework: str

    @property
    def label(self) -> str:
        return f"{self.mode.value}/{self.graph}/{self.kernel}/{self.framework}"


def _cell_budget(spec: BenchmarkSpec, kernel: str, grace: float) -> float:
    """Hard wall-clock budget for one cell (sum of trial deadlines + grace)."""
    return spec.trial_timeout * spec.num_trials(kernel) + grace


def _worker_main(
    slot: int,
    tasks,
    results,
    spec: BenchmarkSpec,
    handles: Mapping[str, SharedCaseHandle],
    frameworks: Mapping[str, Framework],
    track_memory: bool,
) -> None:
    """Worker loop: attach the shared corpus, then drain cells until sentinel.

    Runs on the worker's main thread, so ``run_cell``'s in-process SIGALRM
    deadline is armed and catches interruptible overruns without costing a
    process kill; the parent's hard kill is the backstop for the rest.
    """
    attached = {name: attach_case(handle) for name, handle in handles.items()}
    telemetry = Telemetry(track_memory=track_memory)
    try:
        while True:
            cell = tasks.get()
            if cell is None:
                results.put(("exit", slot))
                return
            results.put(("start", slot, cell.index))
            case = attached[cell.graph].case
            framework = frameworks[cell.framework]
            try:
                result = run_cell(
                    framework, cell.kernel, case, cell.mode, spec,
                    telemetry=telemetry,
                )
            except TrialTimeoutError as exc:
                result = _failed_result(
                    framework, cell.kernel, case, cell.mode, "timeout", exc
                )
            except Exception as exc:
                result = _failed_result(
                    framework, cell.kernel, case, cell.mode, "error", exc
                )
            spans = [span.as_dict() for span in telemetry.spans]
            telemetry.spans.clear()
            results.put(("done", slot, cell.index, result, spans))
    finally:
        for attachment in attached.values():
            attachment.close()


def _killed_cell_span(cell: _Cell, status: str, message: str, wall: float) -> Span:
    """Parent-side span for a cell whose worker never reported back."""
    span = Span(
        name="cell",
        attributes={
            "framework": cell.framework,
            "kernel": cell.kernel,
            "graph": cell.graph,
            "mode": cell.mode.value,
        },
        status=status,
        wall_seconds=wall,
    )
    span.error = {
        "type": "TrialTimeoutError" if status == STATUS_TIMEOUT else "WorkerCrash",
        "message": message,
        "traceback": "",
    }
    return span


def run_suite_parallel(
    frameworks: Iterable[Framework],
    graph_names: Iterable[str],
    kernels: Iterable[str] = KERNELS,
    modes: Iterable[Mode] = (Mode.BASELINE, Mode.OPTIMIZED),
    spec: BenchmarkSpec | None = None,
    jobs: int = 2,
    progress: Callable[[str], None] | None = None,
    telemetry: Telemetry | None = None,
    strict: bool = False,
    cache: GraphCache | None = None,
    kill_grace: float = DEFAULT_KILL_GRACE_SECONDS,
) -> ResultSet:
    """Run a campaign over a process pool; see the module docstring.

    Prefer calling ``run_suite(..., jobs=N)``, which dispatches here; this
    entry point additionally exposes ``kill_grace`` (headroom past a
    cell's trial budgets before the hard kill) for tests and benches.
    """
    spec = spec or BenchmarkSpec()
    tel = telemetry if telemetry is not None else Telemetry()
    framework_list = list(frameworks)
    frameworks_by_name = {fw.name: fw for fw in framework_list}
    graph_names = list(graph_names)
    kernels = list(kernels)
    modes = list(modes)

    cells: list[_Cell] = []
    for graph_name in graph_names:
        for mode in modes:
            for kernel in kernels:
                for framework in framework_list:
                    cells.append(
                        _Cell(len(cells), graph_name, mode, kernel, framework.name)
                    )
    if not cells:
        return ResultSet()
    jobs = max(1, min(int(jobs), len(cells)))

    # fork shares the already-imported interpreter state and is cheap;
    # spawn is the portable fallback (frameworks/spec pickle either way).
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    task_queue = ctx.Queue()
    result_queue = ctx.Queue()

    shared: dict[str, SharedCase] = {}
    workers: dict[int, dict[str, object]] = {}
    results_by_index: dict[int, RunResult] = {}

    def spawn(slot: int) -> None:
        process = ctx.Process(
            target=_worker_main,
            args=(
                slot,
                task_queue,
                result_queue,
                spec,
                {name: sc.handle for name, sc in shared.items()},
                frameworks_by_name,
                tel.track_memory,
            ),
            daemon=True,
        )
        process.start()
        workers[slot] = {
            "process": process,
            "cell": None,
            "deadline": None,
            "started": 0.0,
            "exited": False,
        }

    def record_lost_cell(slot: int, cell: _Cell, status: str, message: str) -> None:
        """Account a cell whose worker was killed or crashed."""
        state = workers[slot]
        results_by_index[cell.index] = RunResult(
            framework=cell.framework,
            kernel=cell.kernel,
            graph=cell.graph,
            mode=cell.mode,
            trial_seconds=[],
            verified=False,
            status=status,
            error=message,
        )
        tel.ingest(
            _killed_cell_span(
                cell, status, message, time.monotonic() - state["started"]
            )
        )

    try:
        # Build the corpus once (cache-aware) and publish it.
        for graph_name in graph_names:
            shared[graph_name] = SharedCase(build_case(graph_name, spec, cache))

        for cell in cells:
            task_queue.put(cell)
        for _ in range(jobs):
            task_queue.put(None)
        for slot in range(jobs):
            spawn(slot)

        completed = 0
        while completed < len(cells):
            try:
                message = result_queue.get(timeout=_POLL_SECONDS)
            except queue_mod.Empty:
                message = None
            if message is not None:
                kind = message[0]
                if kind == "start":
                    _, slot, index = message
                    state = workers[slot]
                    state["cell"] = cells[index]
                    state["started"] = time.monotonic()
                    state["deadline"] = (
                        state["started"]
                        + _cell_budget(spec, cells[index].kernel, kill_grace)
                        if spec.trial_timeout is not None
                        else None
                    )
                    if progress is not None:
                        progress(cells[index].label)
                elif kind == "done":
                    _, slot, index, result, span_records = message
                    state = workers[slot]
                    state["cell"] = None
                    state["deadline"] = None
                    if index in results_by_index:
                        # Raced with a hard kill that already accounted it.
                        continue
                    results_by_index[index] = result
                    completed += 1
                    for record in span_records:
                        tel.ingest(Span.from_dict(record))
                    if strict and not result.ok:
                        if result.status == STATUS_TIMEOUT:
                            raise TrialTimeoutError(
                                f"cell {cells[index].label}: {result.error}"
                            )
                        raise CellFailedError(
                            f"cell {cells[index].label} failed: {result.error}"
                        )
                elif kind == "exit":
                    _, slot = message
                    workers[slot]["exited"] = True

            now = time.monotonic()
            for slot in list(workers):
                state = workers[slot]
                process = state["process"]
                cell = state["cell"]
                if cell is None:
                    # A worker that died between cells (or failed to start)
                    # is replaced so the queue keeps draining; exit code 0
                    # means its "exit" message is simply still in flight.
                    if not process.is_alive() and not state["exited"]:
                        if process.exitcode == 0:
                            state["exited"] = True
                        elif completed < len(cells):
                            spawn(slot)
                    continue
                overdue = state["deadline"] is not None and now > state["deadline"]
                died = not process.is_alive()
                if not overdue and not died:
                    continue
                if overdue and process.is_alive():
                    process.terminate()
                    process.join(1.0)
                    if process.is_alive():  # pragma: no cover - SIGTERM blocked
                        process.kill()
                        process.join(1.0)
                    status = STATUS_TIMEOUT
                    message_text = (
                        f"hard deadline: cell exceeded "
                        f"{_cell_budget(spec, cell.kernel, kill_grace):.6g}s "
                        f"({spec.num_trials(cell.kernel)} trial(s) x "
                        f"{spec.trial_timeout:.6g}s + {kill_grace:.6g}s grace); "
                        "worker killed"
                    )
                else:
                    status = STATUS_ERROR
                    message_text = (
                        f"worker process died mid-cell "
                        f"(exit code {process.exitcode})"
                    )
                record_lost_cell(slot, cell, status, message_text)
                completed += 1
                state["cell"] = None
                state["deadline"] = None
                if strict:
                    if status == STATUS_TIMEOUT:
                        raise TrialTimeoutError(f"cell {cell.label}: {message_text}")
                    raise CellFailedError(f"cell {cell.label}: {message_text}")
                if completed < len(cells):
                    # The killed worker never consumed its shutdown
                    # sentinel; the replacement inherits it.
                    spawn(slot)

        # Campaign complete: let workers drain their sentinels and exit.
        for state in workers.values():
            process = state["process"]
            process.join(5.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(1.0)
    finally:
        for state in workers.values():
            process = state["process"]
            if process.is_alive():
                process.terminate()
                process.join(1.0)
        for q in (task_queue, result_queue):
            q.close()
            q.cancel_join_thread()
        for shared_case in shared.values():
            shared_case.close(unlink=True)

    return ResultSet([results_by_index[index] for index in range(len(cells))])
