"""GKC connected components: hybrid Shiloach–Vishkin.

GKC keeps the classic SV structure — alternating hook and pointer-jump
passes over *all* edges until stable — rather than Afforest's
sample-and-skip.  The paper replicates Sutton et al.'s observation that
Afforest is least effective on Urand; full-sweep SV is insensitive to that
and wins there by ~3x (the 295% Urand cell), while paying the full O(E)
per pass everywhere else.  The "hybrid" refinement: hooking alternates
with SIMD-friendly full compression, and edges already inside one
component are filtered out between passes to shrink the working set.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..core.hooking import compress
from ..graphs import CSRGraph

__all__ = ["gkc_cc"]


def gkc_cc(graph: CSRGraph) -> np.ndarray:
    """Shiloach–Vishkin components; returns min-label per component."""
    n = graph.num_vertices
    src, dst = graph.edge_array()
    if graph.directed:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    comp = np.arange(n, dtype=np.int64)

    while True:
        counters.add_iteration()
        counters.add_edges(src.size)
        cu, cv = comp[src], comp[dst]
        low = np.minimum(cu, cv)
        before = comp.copy()
        np.minimum.at(comp, cu, low)
        np.minimum.at(comp, cv, low)
        compress(comp)
        if np.array_equal(before, comp):
            return comp
        # Hybrid working-set reduction: drop settled intra-component edges.
        active = comp[src] != comp[dst]
        src, dst = src[active], dst[active]
        if src.size == 0:
            return comp
