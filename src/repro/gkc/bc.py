"""GKC betweenness centrality: Brandes with a saved successor DAG.

GKC's BC tracks the GAP reference closely in the paper (97–107% across the
board); like GAP it records the shortest-path DAG during the forward pass
so the backward accumulation replays it without re-filtering the adjacency.
The per-level frontier is produced through the local-buffer discipline.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..core.nputil import expand_frontier
from ..graphs import CSRGraph
from ..la import unique_ids
from .buffers import LocalBuffer

__all__ = ["gkc_bc"]


def gkc_bc(graph: CSRGraph, sources: np.ndarray) -> np.ndarray:
    """Brandes BC with saved per-level DAG edges."""
    n = graph.num_vertices
    scores = np.zeros(n, dtype=np.float64)

    for source in np.asarray(sources, dtype=np.int64):
        depth = np.full(n, -1, dtype=np.int64)
        sigma = np.zeros(n, dtype=np.float64)
        depth[source] = 0
        sigma[source] = 1.0
        frontier = np.array([source], dtype=np.int64)
        levels = [frontier]
        dag: list[tuple[np.ndarray, np.ndarray]] = []
        level = 0
        while frontier.size:
            counters.add_round()
            srcs, tgts = expand_frontier(graph.indptr, graph.indices, frontier)
            counters.add_edges(tgts.size)
            fresh_mask = depth[tgts] < 0
            depth[tgts[fresh_mask]] = level + 1
            on_next = depth[tgts] == level + 1
            dag.append((srcs[on_next], tgts[on_next]))
            np.add.at(sigma, tgts[on_next], sigma[srcs[on_next]])
            buffer = LocalBuffer()
            buffer.push(unique_ids(tgts[fresh_mask], n))
            frontier = buffer.drain()
            if frontier.size:
                levels.append(frontier)
            level += 1

        delta = np.zeros(n, dtype=np.float64)
        for level_index in range(len(levels) - 2, -1, -1):
            counters.add_round()
            succ_src, succ_dst = dag[level_index]
            counters.add_edges(succ_src.size)
            if succ_src.size:
                np.add.at(
                    delta,
                    succ_src,
                    (sigma[succ_src] / sigma[succ_dst]) * (1.0 + delta[succ_dst]),
                )
        delta[source] = 0.0
        scores += delta
    return scores
