"""GKC triangle counting: Lee–Low batched wedge checking.

The paper's standout TC — GKC beats the reference on every graph in both
modes — combines heuristic-driven relabeling, SIMD set intersection, and
cache reuse.  Our analog of the SIMD win is *batch vectorization with
minimal wedge expansion*: for each oriented edge ``(u, v)`` the kernel
expands whichever candidate set is smaller — the forward list ``F(v)``, or
the tail of ``F(u)`` after ``v`` — and tests all candidate closing edges of
a block in one vectorized binary search over the sorted edge-key array.
Per edge this costs ``min(|F(v)|, |F(u) after v|)`` instead of ``|F(v)|``,
the same asymmetry merge-path intersection exploits, and blocks are sized
so each batch stays cache-resident (GKC's L2-sized buffers).
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphs import CSRGraph, degree_order_permutation, permute

__all__ = ["gkc_tc"]

SAMPLE_SIZE = 1000
SKEW_RATIO = 2.0
# Wedge-batch budget per block ("cache-resident working set").
WEDGE_BLOCK = 1 << 16


def _relabel_wanted(graph: CSRGraph, seed: int) -> bool:
    """Degree-skew sampling heuristic (sorting only when it pays)."""
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    sample = graph.out_degrees[rng.integers(0, n, size=min(SAMPLE_SIZE, n))]
    return float(sample.mean()) > SKEW_RATIO * max(float(np.median(sample)), 1.0)


def _count_batch(
    edge_keys: np.ndarray,
    anchor: np.ndarray,
    starts: np.ndarray,
    lengths: np.ndarray,
    pool: np.ndarray,
    n: int,
) -> int:
    """Count closing edges for one wedge batch.

    For wedge ``i`` the candidates are ``pool[starts[i] : starts[i] +
    lengths[i]]`` and the closing edge sought is ``(anchor[i], w)``.
    """
    total_wedges = int(lengths.sum())
    if total_wedges == 0:
        return 0
    anchors = np.repeat(anchor, lengths)
    offsets = np.arange(total_wedges, dtype=np.int64)
    begin = np.repeat(np.cumsum(lengths) - lengths, lengths)
    flat = np.repeat(starts, lengths) + (offsets - begin)
    tails = pool[flat]
    counters.add_edges(total_wedges)
    keys = anchors * np.int64(n) + tails
    position = np.searchsorted(edge_keys, keys)
    position[position == edge_keys.size] = 0
    return int((edge_keys[position] == keys).sum())


def gkc_tc(graph: CSRGraph, seed: int = 0) -> int:
    """Triangle count via two-sided batched wedge-closure testing."""
    if _relabel_wanted(graph, seed):
        counters.note("relabelled")
        graph = permute(graph, degree_order_permutation(graph, ascending=True))
    n = graph.num_vertices
    src, dst = graph.edge_array()
    keep = dst > src
    src, dst = src[keep], dst[keep]
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    num_edges = int(src.size)
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    edge_keys = src * np.int64(n) + dst

    # Per edge (u, v): either expand F(v) and close against u, or expand the
    # remainder of F(u) after v and close against v — whichever is smaller.
    positions = np.arange(num_edges, dtype=np.int64)
    tail_of_u = indptr[src + 1] - (positions + 1)
    size_of_fv = counts[dst]
    expand_fv = size_of_fv <= tail_of_u

    # Candidate-pool descriptors for both strategies.
    anchor = np.where(expand_fv, src, dst)
    starts = np.where(expand_fv, indptr[dst], positions + 1)
    lengths = np.where(expand_fv, size_of_fv, tail_of_u)

    total = 0
    cost = np.concatenate([[0], np.cumsum(lengths)])
    start_edge = 0
    while start_edge < num_edges:
        stop_edge = int(
            np.searchsorted(cost, cost[start_edge] + WEDGE_BLOCK, side="right")
        )
        stop_edge = min(max(stop_edge, start_edge + 1), num_edges)
        sel = slice(start_edge, stop_edge)
        total += _count_batch(
            edge_keys, anchor[sel], starts[sel], lengths[sel], dst, n
        )
        start_edge = stop_edge
    return total
