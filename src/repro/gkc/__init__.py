"""Graph Kernel Collection (GKC): hardware-conscious direct kernels.

Black-box library kernels built HPC-style: local output buffers sized to
cache, batched (SIMD-analog) set intersection, heuristic-driven relabeling.
Kernels follow Table III's GKC column: direction-optimizing BFS,
delta-stepping SSSP, hybrid Shiloach–Vishkin CC, Gauss-Seidel PR, Brandes
BC, and Lee–Low TC.  The paper's Baseline-to-Optimized delta for GKC came
from hyperthreading (unmodelled here); the one modelled Optimized tweak is
BFS's early-exit pull (each row stops scanning at its first frontier
parent), everything else runs identically in both modes.
"""

from __future__ import annotations

import numpy as np

from ..frameworks.base import Framework, FrameworkAttributes, RunContext
from ..graphs import CSRGraph
from .bc import gkc_bc
from .bfs import gkc_bfs
from .buffers import LocalBuffer
from .cc import gkc_cc
from .pagerank import gkc_pagerank
from .sssp import gkc_sssp
from .tc import gkc_tc

__all__ = [
    "GKCFramework",
    "LocalBuffer",
    "gkc_bfs",
    "gkc_sssp",
    "gkc_cc",
    "gkc_pagerank",
    "gkc_bc",
    "gkc_tc",
]


class GKCFramework(Framework):
    """The Graph Kernel Collection as a Framework."""

    attributes = FrameworkAttributes(
        name="gkc",
        full_name="Graph Kernel Collection (GKC)",
        framework_type="direct implementations",
        graph_structure="outgoing & (opt.) incoming edges",
        abstraction="arbitrary",
        synchronization="algorithm-specific, level-synchronous",
        dependences="C++11, OpenMP (original); NumPy (this reproduction)",
        intended_users="application developers",
        algorithms={
            "bfs": "Direction-optimizing + SIMD (batched)",
            "sssp": "Delta-stepping + SIMD (batched)",
            "cc": "Shiloach-Vishkin hybrid",
            "pr": "Gauss-Seidel SpMV + SIMD (batched)",
            "bc": "Brandes (saved successors)",
            "tc": "Lee & Low, SIMD (batched) + heuristic relabel",
        },
        unmodelled=(
            "AVX-256 inline assembly / anti-compiler volatile kernels",
            "hyperthreading (the paper's Baseline->Optimized delta)",
        ),
    )

    def bfs(self, graph: CSRGraph, source: int, ctx: RunContext = RunContext()) -> np.ndarray:
        # Optimized mode adds the early-exit pull (stop a row's in-adjacency
        # scan at the first frontier parent — the "no abstraction between
        # the loop and the data" break the original GKC code performs).
        return gkc_bfs(graph, source, pull_early_exit=ctx.optimized)

    def sssp(self, graph: CSRGraph, source: int, ctx: RunContext = RunContext()) -> np.ndarray:
        return gkc_sssp(graph, source, delta=ctx.delta)

    def pagerank(
        self,
        graph: CSRGraph,
        ctx: RunContext = RunContext(),
        damping: float = 0.85,
        tolerance: float = 1e-4,
        max_iterations: int = 100,
    ) -> np.ndarray:
        return gkc_pagerank(graph, damping, tolerance, max_iterations)

    def connected_components(self, graph: CSRGraph, ctx: RunContext = RunContext()) -> np.ndarray:
        return gkc_cc(graph)

    def betweenness(
        self, graph: CSRGraph, sources: np.ndarray, ctx: RunContext = RunContext()
    ) -> np.ndarray:
        return gkc_bc(graph, sources)

    def triangle_count(self, graph: CSRGraph, ctx: RunContext = RunContext()) -> int:
        undirected = graph.to_undirected() if graph.directed else graph
        return gkc_tc(undirected, seed=ctx.seed)
