"""GKC PageRank: Gauss-Seidel sweeps with cache-sized blocks.

Per Table III GKC runs a Gauss-Seidel SpMV.  The blocks here are sized to
the local-buffer discipline of the library (many small blocks, each
"fitting in cache"), so fresh scores propagate across blocks within one
sweep and the iteration count drops below Jacobi's.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphs import CSRGraph

__all__ = ["gkc_pagerank"]

# Cache-resident block size: the working-set discipline of GKC.
BLOCK_VERTICES = 1024


def gkc_pagerank(
    graph: CSRGraph,
    damping: float = 0.85,
    tolerance: float = 1e-4,
    max_iterations: int = 100,
    block_vertices: int = BLOCK_VERTICES,
) -> np.ndarray:
    """Blocked Gauss-Seidel PageRank; returns converged scores."""
    n = graph.num_vertices
    base = (1.0 - damping) / n
    scores = np.full(n, 1.0 / n, dtype=np.float64)
    out_degrees = graph.out_degrees.astype(np.float64)
    has_out = out_degrees > 0
    safe_degrees = np.where(has_out, out_degrees, 1.0)

    starts = list(range(0, n, block_vertices))
    for _ in range(max_iterations):
        counters.add_iteration()
        counters.add_edges(graph.num_edges)
        previous = scores.copy()
        for lo in starts:
            hi = min(lo + block_vertices, n)
            gathered = graph.in_indices[graph.in_indptr[lo]: graph.in_indptr[hi]]
            contrib = np.where(
                has_out[gathered], scores[gathered] / safe_degrees[gathered], 0.0
            )
            prefix = np.concatenate([[0.0], np.cumsum(contrib)])
            offsets = graph.in_indptr[lo: hi + 1] - graph.in_indptr[lo]
            scores[lo:hi] = base + damping * (prefix[offsets[1:]] - prefix[offsets[:-1]])
        change = float(np.abs(scores - previous).sum())
        if change < tolerance:
            break
    return scores
