"""GKC's thread-local output buffers.

GKC reduces false sharing by having each thread accumulate intermediate
outputs (e.g. the next BFS frontier) in a private buffer sized to L1/L2
cache, flushing to the global buffer with specialized (inline-assembly)
kernels.  The Python analog: a fixed-capacity accumulator that collects
result chunks and concatenates on flush, so the frameworks' kernels retain
the same produce-into-buffer / flush-at-capacity structure.
"""

from __future__ import annotations

import numpy as np

from ..core import counters

__all__ = ["LocalBuffer"]

# "L2-sized" default: 2**15 int64 entries = 256 KiB.
DEFAULT_CAPACITY = 1 << 15


class LocalBuffer:
    """Fixed-capacity accumulator of vertex-id chunks."""

    __slots__ = ("capacity", "_chunks", "_size", "_flushed")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = int(capacity)
        self._chunks: list[np.ndarray] = []
        self._size = 0
        self._flushed: list[np.ndarray] = []

    def push(self, vertices: np.ndarray) -> None:
        """Append ids, flushing to the global region at capacity."""
        if vertices.size == 0:
            return
        self._chunks.append(vertices)
        self._size += int(vertices.size)
        if self._size >= self.capacity:
            self.flush()

    def flush(self) -> None:
        """Move buffered ids to the global region (the counted operation)."""
        if not self._chunks:
            return
        counters.note("buffer_flushes")
        self._flushed.append(np.concatenate(self._chunks))
        self._chunks.clear()
        self._size = 0

    def drain(self) -> np.ndarray:
        """Flush and return everything accumulated so far."""
        self.flush()
        if not self._flushed:
            return np.empty(0, dtype=np.int64)
        merged = np.concatenate(self._flushed)
        self._flushed.clear()
        return merged

    def __len__(self) -> int:
        return self._size + sum(chunk.size for chunk in self._flushed)
