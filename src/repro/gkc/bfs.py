"""GKC BFS: direction-optimizing with buffered frontier construction.

A hand-optimized direct implementation (the paper credits GKC's BFS win on
Road to exactly this: no abstraction layers between the loop and the data).
The next frontier is produced into a cache-sized :class:`LocalBuffer`; the
push/pull switch uses GAP-style scouting.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..core.bitmap import Bitmap
from ..core.nputil import expand_frontier
from ..graphs import CSRGraph
from ..la import claim_first_writer
from ..la.spmv import masked_pull_claim
from .buffers import LocalBuffer

__all__ = ["gkc_bfs"]

ALPHA = 15
BETA = 18


def gkc_bfs(
    graph: CSRGraph, source: int, pull_early_exit: bool = False
) -> np.ndarray:
    """Direction-optimizing BFS with buffered frontiers; returns parents.

    With ``pull_early_exit=True`` (Optimized mode) the pull phase runs the
    shared early-exit kernel — each row stops at its first frontier parent —
    matching GKC's hand-tuned "break out of the inner loop" discipline.
    Parents are identical; only edges examined drop.
    """
    n = graph.num_vertices
    parents = np.full(n, -1, dtype=np.int64)
    parents[source] = source
    frontier = np.array([source], dtype=np.int64)
    out_degrees = graph.out_degrees
    edges_remaining = graph.num_edges

    while frontier.size:
        counters.add_round()
        scout = int(out_degrees[frontier].sum())
        edges_remaining -= scout
        if scout > max(edges_remaining, 1) // ALPHA:
            bits = Bitmap.from_indices(n, frontier)
            while frontier.size and frontier.size > n // BETA:
                counters.add_round()
                unvisited = np.flatnonzero(parents < 0)
                fresh, examined = masked_pull_claim(
                    graph.in_indptr,
                    graph.in_indices,
                    unvisited,
                    bits.bits,
                    parents,
                    early_exit=pull_early_exit,
                )
                counters.add_edges(examined)
                if fresh.size == 0:
                    return parents
                frontier = fresh
                bits = Bitmap.from_indices(n, frontier)
            if frontier.size == 0:
                return parents
        buffer = LocalBuffer()
        srcs, tgts = expand_frontier(graph.indptr, graph.indices, frontier)
        counters.add_edges(tgts.size)
        unclaimed = parents[tgts] < 0
        srcs, tgts = srcs[unclaimed], tgts[unclaimed]
        if tgts.size == 0:
            return parents
        fresh = claim_first_writer(parents, tgts, srcs, n)
        buffer.push(fresh)
        frontier = buffer.drain()
    return parents
