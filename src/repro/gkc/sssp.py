"""GKC SSSP: bulk-synchronous delta-stepping with buffered buckets.

Straightforward delta-stepping — no bucket fusion — with the improved
vertices produced into local buffers before landing in their buckets.  The
paper's numbers (113–119% on Web/Urand, 18% on Road) reflect exactly this
combination: excellent raw per-edge throughput, but every same-bucket
refill on a high-diameter graph pays a synchronization round.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..core.nputil import expand_frontier_weighted
from ..graphs import CSRGraph
from ..la import unique_ids
from .buffers import LocalBuffer

__all__ = ["gkc_sssp"]


def gkc_sssp(graph: CSRGraph, source: int, delta: int = 16) -> np.ndarray:
    """Delta-stepping with buffered bucket insertion; returns distances."""
    n = graph.num_vertices
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    buckets: dict[int, LocalBuffer] = {}
    initial = LocalBuffer()
    initial.push(np.array([source], dtype=np.int64))
    buckets[0] = initial

    while buckets:
        current = min(buckets)
        members = buckets.pop(current).drain()
        while members.size:
            counters.add_round()
            members = np.unique(members)
            members = members[(dist[members] // delta).astype(np.int64) == current]
            if members.size == 0:
                break
            srcs, tgts, weights = expand_frontier_weighted(
                graph.indptr, graph.indices, graph.weights, members
            )
            counters.add_edges(tgts.size)
            candidate = dist[srcs] + weights
            better = candidate < dist[tgts]
            tgts, candidate = tgts[better], candidate[better]
            if tgts.size == 0:
                break
            np.minimum.at(dist, tgts, candidate)
            improved = unique_ids(tgts, n)
            landing = (dist[improved] // delta).astype(np.int64)
            members = improved[landing == current]
            for bucket in np.unique(landing[landing != current]):
                target = buckets.setdefault(int(bucket), LocalBuffer())
                target.push(improved[landing == bucket])
    return dist
