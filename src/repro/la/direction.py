"""Shared direction-optimizing push/pull switch (Beamer's ALPHA/BETA rule).

Beamer's direction-optimizing BFS heuristic lived inside ``gapbs/bfs.py``
since the seed; LAGraph's BFS reimplemented the same comparison with its
own thresholds.  This module lifts the policy into one object any
frontier kernel (BFS, BC forward sweeps, frontier SSSP) can consult:

* switch **to pull** when the frontier's unexplored out-edges exceed the
  remaining untraversed edges divided by ALPHA (the frontier is about to
  touch most of what is left, so scanning the unvisited side is cheaper);
* switch **back to push** once the frontier shrinks below |V| / BETA.

The optimizer only decides direction; it does not touch counters, and the
edges-remaining bookkeeping (``charge``) is driven by the caller so the
accounting matches each framework's own notion of "traversed".
"""

from __future__ import annotations

import numpy as np

__all__ = ["DirectionOptimizer", "ALPHA", "BETA"]

# Beamer et al.'s published constants, identical to the reference GAPBS.
ALPHA = 15
BETA = 18


class DirectionOptimizer:
    """Stateful ALPHA/BETA policy over one traversal's lifetime.

    ``edges_remaining`` starts at the graph's directed edge count and is
    decremented by :meth:`charge` as frontiers expand, mirroring the
    reference implementation's ``edges_to_check -= scout_count``.
    """

    __slots__ = ("alpha", "beta", "num_vertices", "edges_remaining")

    def __init__(
        self,
        num_vertices: int,
        num_edges: int,
        alpha: int = ALPHA,
        beta: int = BETA,
    ) -> None:
        self.alpha = alpha
        self.beta = beta
        self.num_vertices = num_vertices
        self.edges_remaining = int(num_edges)

    def scout_count(self, out_degrees: np.ndarray, frontier: np.ndarray) -> int:
        """Total out-degree of the frontier — the cost of pushing it."""
        if frontier.size == 0:
            return 0
        return int(out_degrees[frontier].sum())

    def charge(self, edges: int) -> None:
        """Account ``edges`` as no longer untraversed."""
        self.edges_remaining -= int(edges)

    def wants_pull(self, scout: int) -> bool:
        """True when the push cost crosses the ALPHA threshold."""
        return scout > max(self.edges_remaining, 1) // self.alpha

    def frontier_is_small(self, frontier_size: int) -> bool:
        """True when a pulled frontier is small enough to resume pushing."""
        return frontier_size <= max(self.num_vertices, 1) // self.beta

    def lagraph_wants_pull(self, scout: int, frontier_size: int) -> bool:
        """LAGraph's per-round variant: either threshold triggers pull."""
        return self.wants_pull(scout) or frontier_size > max(
            self.num_vertices, 1
        ) // self.beta
