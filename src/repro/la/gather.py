"""CSR edge gathers: the memory operation under every frontier kernel.

Expanding "the edges leaving this vertex set" is the single hottest
operation in the repository — every push step, pull step, relaxation, and
full-graph sweep in all six frameworks bottoms out here.  The optimized
path improves on the historical three-``np.repeat`` formulation in two
ways:

* one ``np.repeat`` fewer: the flat edge index is ``arange(total)`` plus a
  per-row shift (``row_start - exclusive_cumsum(counts)``) repeated once;
* a **full-sweep fast path**: when the row set is every vertex in order
  (topology-driven kernels like PageRank and label propagation), the
  target array *is* ``indices`` — no flat-index computation and no fancy
  gather at all, and weights pass through as views.

Both paths return identical arrays; index dtype follows the graph's
(int32 and int64 CSR arrays are both supported and preserved).
"""

from __future__ import annotations

import numpy as np

from . import config

__all__ = [
    "gather_edges",
    "gather_edges_weighted",
    "flat_edge_index",
    "is_full_range",
]


def is_full_range(rows: np.ndarray, num_rows: int) -> bool:
    """Whether ``rows`` is exactly ``arange(num_rows)`` (a full sweep)."""
    if rows.size != num_rows or num_rows == 0:
        return rows.size == num_rows == 0
    # O(n) comparison, far cheaper than the O(E) gather it short-circuits.
    return bool(rows[0] == 0 and rows[-1] == num_rows - 1 and np.array_equal(
        rows, np.arange(num_rows, dtype=rows.dtype)
    ))


def _flat_edge_index(
    indptr: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int]:
    """(row owner per edge, flat index into ``indices``, total edges)."""
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    ends = np.cumsum(counts)
    total = int(ends[-1]) if ends.size else 0
    if total == 0:
        empty = np.empty(0, dtype=rows.dtype)
        return empty, np.empty(0, dtype=np.int64), 0
    owners = np.repeat(rows, counts)
    shift = starts - (ends - counts)
    flat = np.repeat(shift, counts) + np.arange(total, dtype=np.int64)
    return owners, flat, total


def _reference_flat_edge_index(
    indptr: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int]:
    """The pre-port three-repeat gather, kept as the A/B reference."""
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=rows.dtype)
        return empty, np.empty(0, dtype=np.int64), 0
    owners = np.repeat(rows, counts)
    offsets = np.arange(total, dtype=np.int64)
    row_begin = np.repeat(np.cumsum(counts) - counts, counts)
    flat = np.repeat(starts, counts) + (offsets - row_begin)
    return owners, flat, total


def flat_edge_index(
    indptr: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int]:
    """Config-dispatched ``(owners, flat_index, total)`` for callers that
    gather auxiliary per-edge arrays (values, weights) themselves."""
    if config.enabled():
        return _flat_edge_index(indptr, rows)
    return _reference_flat_edge_index(indptr, rows)


def gather_edges(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gather all edges leaving ``rows``: ``(sources, targets)``.

    ``sources[i]`` is the row owning edge ``i`` and ``targets[i]`` its
    head; duplicate targets are preserved (deduplication policy belongs to
    the caller).
    """
    if config.enabled():
        num_rows = indptr.size - 1
        if is_full_range(rows, num_rows):
            counts = np.diff(indptr)
            return np.repeat(rows, counts), indices
        owners, flat, total = _flat_edge_index(indptr, rows)
    else:
        owners, flat, total = _reference_flat_edge_index(indptr, rows)
    if total == 0:
        return owners, np.empty(0, dtype=indices.dtype)
    return owners, indices[flat]


def gather_edges_weighted(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    rows: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Like :func:`gather_edges` but also returns per-edge weights."""
    if config.enabled():
        num_rows = indptr.size - 1
        if is_full_range(rows, num_rows):
            counts = np.diff(indptr)
            return np.repeat(rows, counts), indices, weights
        owners, flat, total = _flat_edge_index(indptr, rows)
    else:
        owners, flat, total = _reference_flat_edge_index(indptr, rows)
    if total == 0:
        return owners, np.empty(0, dtype=indices.dtype), np.empty(0, dtype=weights.dtype)
    return owners, indices[flat], weights[flat]
