"""repro.la — the shared linear-algebra kernel substrate.

One optimized CSR primitive tier under all framework reimplementations:
edge gathers (:mod:`.gather`), first-writer frontier bookkeeping
(:mod:`.frontier`), masked/semiring SpMV (:mod:`.spmv`), and the
direction-optimizing push/pull policy (:mod:`.direction`).  Every
primitive keeps its pre-port reference implementation behind the
:mod:`.config` switch so benchmarks and differential tests can A/B the
two engines in-process.  See ``docs/KERNEL_SUBSTRATE.md``.
"""

from .config import enabled, set_enabled, use_substrate
from .direction import ALPHA, BETA, DirectionOptimizer
from .frontier import (
    claim_first_writer,
    first_occurrence_mask,
    relax_minimum,
    unique_ids,
)
from .gather import gather_edges, gather_edges_weighted, is_full_range
from .spmv import (
    frontier_spmv,
    masked_pull_claim,
    plus_times_operator,
    spmv_min_plus,
)

__all__ = [
    "enabled",
    "set_enabled",
    "use_substrate",
    "ALPHA",
    "BETA",
    "DirectionOptimizer",
    "claim_first_writer",
    "first_occurrence_mask",
    "relax_minimum",
    "unique_ids",
    "gather_edges",
    "gather_edges_weighted",
    "is_full_range",
    "frontier_spmv",
    "masked_pull_claim",
    "plus_times_operator",
    "spmv_min_plus",
]
