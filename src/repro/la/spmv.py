"""Masked SpMV primitives: the linear-algebra core under the frameworks.

GraphBLAST and GraphMat demonstrated that one well-optimized masked
SpMV/semiring engine can back every classic graph kernel; this module is
that engine for the reproduction.  Three tiers:

* :func:`plus_times_operator` — the (+, x) semiring product as a reusable
  operator closure.  The optimized path hands the CSR arrays to SciPy's
  compiled matvec (our stand-in for a vendor BLAS); the reference path is
  the gather + prefix-sum formulation the kernels used before the port.
  PageRank-style iteration builds the operator once and applies it every
  sweep, amortizing construction exactly like a real library would.
* :func:`spmv_min_plus` — the full (min, +) tropical product, segment-min
  over CSR rows (SciPy has no min-plus; ``np.minimum.reduceat`` does).
* :func:`masked_pull_claim` — the masked pull step of direction-optimized
  BFS: rows restricted to a structural mask (the unvisited set), values
  from the ``any_secondi`` semiring (adopt the first in-neighbor found in
  the frontier bitmap), with an optional chunked early-exit scan that
  stops paying for a row's in-adjacency once a parent is found.

Work accounting stays with the callers: every function returns (or lets
the caller compute) the number of edges actually examined, and never
touches the counters itself.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp

from . import config
from .gather import gather_edges, gather_edges_weighted
from .frontier import claim_first_writer

__all__ = [
    "plus_times_operator",
    "spmv_min_plus",
    "masked_pull_claim",
    "frontier_spmv",
]

# Early-exit pull: rows scan their first EARLY_EXIT_CHUNK in-edges, then
# unsatisfied rows scan geometrically larger chunks (x4 per pass).  The
# first chunk covers most vertices on low-diameter graphs, where nearly
# every in-edge's source is already in the frontier.
EARLY_EXIT_CHUNK = 4
EARLY_EXIT_GROWTH = 4


def plus_times_operator(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray | None = None,
) -> Callable[[np.ndarray], np.ndarray]:
    """Return ``x -> A @ x`` for the CSR matrix ``A`` over (+, x).

    ``data=None`` means an unweighted (pattern) matrix.  Build once per
    kernel invocation; apply once per sweep.
    """
    num_rows = indptr.size - 1
    num_edges = int(indices.size)
    if config.enabled():
        values = np.ones(num_edges, dtype=np.float64) if data is None else data
        matrix = sp.csr_matrix(
            (values, indices, indptr), shape=(num_rows, num_rows), copy=False
        )
        return lambda x: matrix @ x

    def reference(x: np.ndarray) -> np.ndarray:
        gathered = x[indices] if data is None else x[indices] * data
        prefix = np.concatenate([[0.0], np.cumsum(gathered)])
        return prefix[indptr[1:]] - prefix[indptr[:-1]]

    return reference


def spmv_min_plus(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    x: np.ndarray,
) -> np.ndarray:
    """Full (min, +) product: ``y[i] = min over row i of (w + x[col])``.

    Rows with no stored entries get ``+inf`` (the tropical identity).
    """
    num_rows = indptr.size - 1
    y = np.full(num_rows, np.inf, dtype=np.float64)
    if indices.size == 0:
        return y
    terms = weights + x[indices]
    occupied = np.flatnonzero(indptr[1:] > indptr[:-1])
    if occupied.size == 0:
        return y
    if config.enabled():
        y[occupied] = np.minimum.reduceat(terms, indptr[occupied])
        return y
    for row in occupied:  # reference: row-at-a-time reduction
        y[row] = terms[indptr[row]: indptr[row + 1]].min()
    return y


def _pull_full_scan(
    in_indptr: np.ndarray,
    in_indices: np.ndarray,
    unvisited: np.ndarray,
    frontier_bits: np.ndarray,
    parents: np.ndarray,
    num_vertices: int,
) -> tuple[np.ndarray, int]:
    """Worst-case pull: every unvisited row scans its whole in-adjacency."""
    sources, targets = gather_edges(in_indptr, in_indices, unvisited)
    examined = int(targets.size)
    hits = frontier_bits[targets]
    sources, targets = sources[hits], targets[hits]
    if sources.size == 0:
        return np.empty(0, dtype=np.int64), examined
    fresh = claim_first_writer(parents, sources, targets, num_vertices)
    return fresh, examined


def _pull_early_exit(
    in_indptr: np.ndarray,
    in_indices: np.ndarray,
    unvisited: np.ndarray,
    frontier_bits: np.ndarray,
    parents: np.ndarray,
    num_vertices: int,
) -> tuple[np.ndarray, int]:
    """Chunked early-exit pull: rows stop scanning at their first hit.

    The vectorized analog of the reference C++ ``break``: all active rows
    scan a bounded chunk of their in-adjacency per pass; rows that found a
    frontier member drop out, and only the remainder pays for deeper
    chunks.  Parent selection is identical to the full scan (the first
    frontier member in adjacency order), only the edges *examined* shrink.
    """
    examined = 0
    chunk = EARLY_EXIT_CHUNK
    cursor = in_indptr[unvisited].astype(np.int64, copy=True)
    row_end = in_indptr[unvisited + 1].astype(np.int64, copy=False)
    active = unvisited
    found_ids: list[np.ndarray] = []
    while active.size:
        take = np.minimum(cursor + chunk, row_end) - cursor
        scanning = take > 0
        rows, starts, counts = active[scanning], cursor[scanning], take[scanning]
        if rows.size == 0:
            break
        ends = np.cumsum(counts)
        total = int(ends[-1])
        examined += total
        flat = np.repeat(starts - (ends - counts), counts) + np.arange(
            total, dtype=np.int64
        )
        targets = in_indices[flat]
        owners = np.repeat(rows, counts)
        hits = frontier_bits[targets]
        if hits.any():
            fresh = claim_first_writer(
                parents, owners[hits], targets[hits], num_vertices
            )
            found_ids.append(fresh)
            satisfied = np.zeros(num_vertices, dtype=bool)
            satisfied[fresh] = True
            keep = ~satisfied[active] & (cursor + chunk < row_end)
        else:
            keep = cursor + chunk < row_end
        cursor = cursor + chunk
        active, cursor, row_end = active[keep], cursor[keep], row_end[keep]
        chunk *= EARLY_EXIT_GROWTH
    if not found_ids:
        return np.empty(0, dtype=np.int64), examined
    if len(found_ids) == 1:
        return found_ids[0], examined
    flags = np.zeros(num_vertices, dtype=bool)
    for ids in found_ids:
        flags[ids] = True
    return np.flatnonzero(flags), examined


def masked_pull_claim(
    in_indptr: np.ndarray,
    in_indices: np.ndarray,
    unvisited: np.ndarray,
    frontier_bits: np.ndarray,
    parents: np.ndarray,
    early_exit: bool = False,
) -> tuple[np.ndarray, int]:
    """Masked pull step: unvisited rows adopt their first frontier in-neighbor.

    The structural mask is the ``unvisited`` row set (the complement of the
    visited vector); values follow the ``any_secondi`` semiring — each
    claimed row's parent is the first in-neighbor found in ``frontier_bits``.
    Writes ``parents`` in place and returns ``(fresh_rows, edges_examined)``
    so the caller can report work honestly (with ``early_exit`` the scan
    stops per row at the first hit, which is *less* work than the full
    scan — see the counter-regression pin in ``tests/test_counter_regression``).
    """
    num_vertices = parents.size
    if unvisited.size == 0:
        return np.empty(0, dtype=np.int64), 0
    if early_exit and config.enabled():
        return _pull_early_exit(
            in_indptr, in_indices, unvisited, frontier_bits, parents, num_vertices
        )
    return _pull_full_scan(
        in_indptr, in_indices, unvisited, frontier_bits, parents, num_vertices
    )


def frontier_spmv(
    indptr: np.ndarray,
    indices: np.ndarray,
    frontier: np.ndarray,
    x: np.ndarray,
    semiring,
    mask_bits: np.ndarray | None = None,
    complement: bool = False,
    weights: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Batched frontier SpMV ``y' = x' * A`` over a configurable semiring.

    The generic push primitive: expand the frontier's rows, multiply each
    edge with the semiring's binary op (``x`` value on the source side,
    edge weight — or 1 — on the matrix side), filter targets through an
    optional boolean mask (``complement=True`` keeps targets *outside* the
    mask), and reduce duplicates with the semiring's additive monoid.

    Returns ``(target_ids, values, edges_examined)``; ``semiring`` is a
    :class:`repro.semiring.ops.Semiring`.
    """
    if weights is None:
        sources, targets = gather_edges(indptr, indices, frontier)
        edge_vals = np.ones(targets.size, dtype=np.float64)
    else:
        sources, targets, edge_vals = gather_edges_weighted(
            indptr, indices, weights, frontier
        )
    examined = int(targets.size)
    if targets.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64), examined
    # Index conventions mirror ``repro.semiring.operations.vxm``: positional
    # operators (SECONDI) see the *source* row, so ANY_SECONDI adopts parents.
    z = semiring.multiply.apply(x[sources], edge_vals, ix=sources, iy=sources)
    z = np.asarray(z, dtype=np.float64)
    if mask_bits is not None:
        allowed = mask_bits[targets]
        if complement:
            allowed = ~allowed
        targets, z = targets[allowed], z[allowed]
        if targets.size == 0:
            return np.empty(0, dtype=np.int64), z, examined
    out_idx, out_vals = semiring.add.segment_reduce(targets, z)
    return out_idx, out_vals, examined
