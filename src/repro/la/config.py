"""Runtime switch between the optimized substrate and its reference paths.

Every primitive in :mod:`repro.la` carries two implementations: the
optimized path (single-repeat gathers, first-writer claims without sorts,
SciPy-backed SpMV) and a reference path that is byte-for-byte the hot-loop
code the framework kernels used before the port.  The switch exists for two
reasons:

* **A/B benchmarking** — ``benchmarks/bench_kernel_substrate.py`` times
  every ported kernel under both paths from the same process and emits the
  speedup table (``BENCH_kernels.json``);
* **differential testing** — ``tests/test_la_differential.py`` runs every
  ported framework x kernel cell under both paths and asserts the outputs
  match, which is the proof that the substrate is a constant-factor
  optimization and not an algorithmic change.

The flag is process-global and intended to be toggled only from test and
benchmark harnesses (kernels never touch it); ``REPRO_LA_DISABLE=1`` in the
environment starts the process on the reference paths.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator

__all__ = ["enabled", "set_enabled", "use_substrate"]

_enabled: bool = os.environ.get("REPRO_LA_DISABLE", "") not in ("1", "true", "yes")


def enabled() -> bool:
    """Whether the optimized substrate paths are active."""
    return _enabled


def set_enabled(flag: bool) -> bool:
    """Set the switch; returns the previous value."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


@contextlib.contextmanager
def use_substrate(flag: bool) -> Iterator[None]:
    """Temporarily force the optimized (True) or reference (False) paths."""
    previous = set_enabled(flag)
    try:
        yield
    finally:
        set_enabled(previous)
