"""Frontier bookkeeping: first-writer claims, dedup, and min-relaxation.

Every frontier kernel in the repository used one sorting idiom for
"CAS-like" updates::

    fresh, first = np.unique(targets, return_index=True)
    state[fresh] = values[first]

i.e. of all edges hitting a target this round, the first in expansion
order wins — the vectorized analog of the reference codes' compare-and-
swap loops.  ``np.unique`` pays an O(E log E) sort for this.  The
optimized path gets identical semantics in O(E + V) without sorting:

* **first-writer claim** — NumPy fancy assignment is last-writer-wins, so
  assigning the *reversed* arrays makes the first occurrence win;
* **dedup via flags** — a boolean scratch array plus ``flatnonzero``
  yields the same sorted unique ids as ``np.unique``.

The reference paths are the original ``np.unique`` formulations, kept for
the A/B harness and the differential suite.
"""

from __future__ import annotations

import numpy as np

from . import config

__all__ = [
    "claim_first_writer",
    "first_occurrence_mask",
    "unique_ids",
    "relax_minimum",
]


def claim_first_writer(
    state: np.ndarray, keys: np.ndarray, values: np.ndarray, num_vertices: int
) -> np.ndarray:
    """First-writer-wins scatter: ``state[k] = first value per key``.

    Writes into ``state`` in place and returns the sorted unique keys that
    were written — exactly the ``np.unique(..., return_index=True)`` idiom
    shared by the BFS push steps, the pull steps, and the Brandes forward
    passes, centralized here (property-tested for adversarial duplicate
    orderings in ``tests/test_la_first_writer.py``).
    """
    if keys.size == 0:
        return np.empty(0, dtype=np.int64)
    if config.enabled():
        # Fancy assignment keeps the LAST write per index; reversing both
        # arrays therefore keeps the FIRST, with no sort.
        state[keys[::-1]] = values[::-1]
        return unique_ids(keys, num_vertices)
    fresh, first = np.unique(keys, return_index=True)
    state[fresh] = values[first]
    return fresh


def first_occurrence_mask(keys: np.ndarray, num_vertices: int) -> np.ndarray:
    """Boolean mask selecting the first occurrence of each key.

    The mask form of the same idiom, for update functions that must report
    *which edge entries* claimed their target (Ligra/GraphIt ``applyModified``
    semantics).
    """
    if keys.size == 0:
        return np.zeros(0, dtype=bool)
    if config.enabled():
        first_at = np.full(num_vertices, -1, dtype=np.int64)
        positions = np.arange(keys.size, dtype=np.int64)
        first_at[keys[::-1]] = positions[::-1]
        return first_at[keys] == positions
    _, first = np.unique(keys, return_index=True)
    mask = np.zeros(keys.size, dtype=bool)
    mask[first] = True
    return mask


def unique_ids(keys: np.ndarray, num_vertices: int) -> np.ndarray:
    """Sorted unique vertex ids, flag-based instead of sort-based."""
    if keys.size == 0:
        return np.empty(0, dtype=np.int64)
    if config.enabled():
        flags = np.zeros(num_vertices, dtype=bool)
        flags[keys] = True
        return np.flatnonzero(flags)
    return np.unique(keys)


def relax_minimum(
    dist: np.ndarray,
    targets: np.ndarray,
    candidates: np.ndarray,
    num_vertices: int,
) -> np.ndarray:
    """Apply ``dist[t] = min(dist[t], candidate)`` per edge; return improved.

    The caller is expected to pre-filter to strictly-improving edges (the
    shared relaxation pattern of the SSSP kernels); the return value is the
    sorted unique set of improved targets.
    """
    if targets.size == 0:
        return np.empty(0, dtype=np.int64)
    np.minimum.at(dist, targets, candidates)
    return unique_ids(targets, num_vertices)
