"""Forward-adjacency intersection: the triangle-counting primitive.

Both triangle-counting kernels (GAP's and Ligra's) count each triangle
once by orienting edges low-id -> high-id and intersecting forward lists.
The reference formulation is a per-vertex Python loop; the optimized path
lifts it into blocked two-level gathers: every wedge ``u -> v -> w`` for a
block of base vertices is materialized at once and closed by one binary
search of the key ``u * n + w`` against the global forward-edge key list
(which is already sorted, because rows ascend and each row is sorted).

Returns ``(triangles, edges_examined)``; the per-vertex work accounting —
``targets.size + row.size`` for every base vertex with a non-empty wedge
set — is identical across both paths, so counter parity is structural.
"""

from __future__ import annotations

import numpy as np

from . import config

__all__ = ["count_forward_triangles", "INTERSECT_BLOCK_EDGES"]

# Upper bound on second-level expansion size per block (bounds peak memory
# to a few tens of MB of int64).
INTERSECT_BLOCK_EDGES = 1 << 22


def _reference_count(indptr: np.ndarray, indices: np.ndarray) -> tuple[int, int]:
    """Pre-port per-vertex intersection loop, kept as the A/B reference."""
    total = 0
    examined = 0
    num_vertices = indptr.size - 1
    for u in range(num_vertices):
        row = indices[indptr[u]: indptr[u + 1]]
        if row.size < 2:
            continue
        # Gather the forward lists of all forward neighbors of u at once.
        starts = indptr[row]
        ends = indptr[row + 1]
        chunks = [indices[s:e] for s, e in zip(starts, ends) if e > s]
        if not chunks:
            continue
        targets = np.concatenate(chunks)
        examined += targets.size + row.size
        position = np.searchsorted(row, targets)
        position[position == row.size] = 0
        total += int((row[position] == targets).sum())
    return total, examined


def count_forward_triangles(
    indptr: np.ndarray, indices: np.ndarray
) -> tuple[int, int]:
    """Count triangles in a forward (low -> high oriented) CSR adjacency."""
    if not config.enabled():
        return _reference_count(indptr, indices)
    num_vertices = indptr.size - 1
    if num_vertices == 0 or indices.size == 0:
        return 0, 0
    deg = np.diff(indptr)
    # Per-u size of the concatenated neighbor forward lists (the wedge count).
    prefix = np.concatenate([[0], np.cumsum(deg[indices])])
    wedges_per_u = prefix[indptr[1:]] - prefix[indptr[:-1]]
    qualifying = (deg >= 2) & (wedges_per_u > 0)
    base = np.flatnonzero(qualifying)
    if base.size == 0:
        return 0, 0
    owners = np.repeat(np.arange(num_vertices, dtype=np.int64), deg)
    edge_keys = owners * num_vertices + indices
    wedge_cum = np.cumsum(wedges_per_u[base])
    total = 0
    examined = 0
    lo = 0
    while lo < base.size:
        floor = int(wedge_cum[lo - 1]) if lo else 0
        hi = max(
            int(np.searchsorted(wedge_cum, floor + INTERSECT_BLOCK_EDGES)) + 1,
            lo + 1,
        )
        block = base[lo:hi]
        lo = hi
        # First level: u -> v over the block.
        starts = indptr[block]
        counts = deg[block]
        ends = np.cumsum(counts)
        flat = np.repeat(starts - (ends - counts), counts) + np.arange(
            int(ends[-1]), dtype=np.int64
        )
        mids = indices[flat]
        src_u = np.repeat(block, counts)
        # Second level: v -> w, base vertex carried through to u.
        counts2 = deg[mids]
        ends2 = np.cumsum(counts2)
        total2 = int(ends2[-1]) if ends2.size else 0
        if total2 == 0:
            continue
        flat2 = np.repeat(indptr[mids] - (ends2 - counts2), counts2) + np.arange(
            total2, dtype=np.int64
        )
        wedge_u = np.repeat(src_u, counts2)
        wedge_w = indices[flat2]
        keys = wedge_u * num_vertices + wedge_w
        pos = np.searchsorted(edge_keys, keys)
        pos[pos == edge_keys.size] = 0
        total += int((edge_keys[pos] == keys).sum())
        examined += total2 + int(deg[block].sum())
    return total, examined
