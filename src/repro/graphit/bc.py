"""GraphIt betweenness centrality: Brandes with schedulable frontiers.

Two schedule-visible choices from the paper: GraphIt represents the
frontier as a *bitvector* (good when frontiers are dense — BC's frontiers
are, on the low-diameter graphs where GraphIt's BC beat GAP by >2x), and it
*transposes the graph for the backward pass* — the dependency accumulation
walks in-edges of each level, which wins on large graphs but costs extra on
small ones like Road.  The Optimized Road schedule swaps the bitvector for
a sparse frontier, the modest speedup the paper records.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphitc import Schedule, VertexSet, edgeset_apply_from
from ..graphs import CSRGraph
from ..la import first_occurrence_mask

__all__ = ["graphit_bc"]


def graphit_bc(graph: CSRGraph, sources: np.ndarray, schedule: Schedule) -> np.ndarray:
    """Brandes BC from the given roots under the given schedule."""
    n = graph.num_vertices
    scores = np.zeros(n, dtype=np.float64)
    transpose = graph.transpose()  # backward pass runs on the transpose

    for source in np.asarray(sources, dtype=np.int64):
        depth = np.full(n, -1, dtype=np.int64)
        sigma = np.zeros(n, dtype=np.float64)
        depth[source] = 0
        sigma[source] = 1.0
        level = 0
        levels: list[np.ndarray] = [np.array([source], dtype=np.int64)]

        def count_paths(srcs: np.ndarray, dsts: np.ndarray, weights: np.ndarray) -> np.ndarray:
            del weights
            np.add.at(sigma, dsts, sigma[srcs])
            return first_occurrence_mask(dsts, n)

        frontier = VertexSet.from_ids(n, levels[0], schedule.frontier)
        while frontier:
            counters.add_round()
            frontier = edgeset_apply_from(
                graph, frontier, count_paths, schedule, to_filter=depth < 0
            )
            level += 1
            members = frontier.ids()
            if members.size:
                depth[members] = level
                levels.append(members)

        delta = np.zeros(n, dtype=np.float64)
        for level_index in range(len(levels) - 1, 0, -1):
            counters.add_round()
            members = levels[level_index]

            def push_dependency(
                srcs: np.ndarray, dsts: np.ndarray, weights: np.ndarray
            ) -> np.ndarray:
                # Running on the transpose: srcs are level-d vertices, dsts
                # their in-neighbors in the original graph.
                del weights
                predecessor = depth[dsts] == depth[srcs] - 1
                np.add.at(
                    delta,
                    dsts[predecessor],
                    (sigma[dsts[predecessor]] / sigma[srcs[predecessor]])
                    * (1.0 + delta[srcs[predecessor]]),
                )
                return np.zeros(dsts.size, dtype=bool)

            level_set = VertexSet.from_ids(n, members, schedule.frontier)
            edgeset_apply_from(transpose, level_set, push_dependency, schedule)
        delta[source] = 0.0
        scores += delta
    return scores
