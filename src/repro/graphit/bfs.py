"""GraphIt BFS: hybrid-direction edgeset.apply over the DSL engine.

The algorithm is four lines of GraphIt — apply ``updateParent`` to the
edges from the frontier, restricted to unvisited destinations — and all
performance decisions live in the schedule.  The paper attributes GAP's
Baseline edge on Road to cheaper frontier creation and active-vertex
counting, which here shows up as the engine's per-step vertexset
construction; the Optimized push-only schedule on Road removes the hybrid
check (and its scouting cost) entirely.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphitc import Schedule, VertexSet, edgeset_apply_from
from ..graphs import CSRGraph
from ..la import first_occurrence_mask

__all__ = ["graphit_bfs"]


def graphit_bfs(graph: CSRGraph, source: int, schedule: Schedule) -> np.ndarray:
    """BFS under the given schedule; returns the parent array."""
    n = graph.num_vertices
    parents = np.full(n, -1, dtype=np.int64)
    parents[source] = source

    def update_parent(srcs: np.ndarray, dsts: np.ndarray, weights: np.ndarray) -> np.ndarray:
        del weights
        modified = first_occurrence_mask(dsts, n)
        parents[dsts[modified]] = srcs[modified]
        return modified

    frontier = VertexSet.from_ids(n, np.array([source]), schedule.frontier)
    while frontier:
        counters.add_round()
        frontier = edgeset_apply_from(
            graph, frontier, update_parent, schedule, to_filter=parents < 0
        )
    return parents
