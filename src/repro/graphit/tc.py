"""GraphIt triangle counting: order-invariant, with a schedulable intersect.

Table III lists GraphIt's TC as the order-invariant algorithm with
heuristic relabelling.  The paper's one GraphIt-specific note: its default
set-intersection method had less branch misprediction (good on the large
graphs) but was inefficient on small ones — on Road the Optimized run
switched back to "the naive intersection method used in GAP".  We expose
both: ``intersect='hash'`` tests membership through a dense stamp table
(the vectorized analog of the mispredict-friendly method), ``'merge'``
binary-searches sorted lists as GAP does.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphs import CSRGraph, degree_order_permutation, permute

__all__ = ["graphit_tc"]

SAMPLE_SIZE = 1000
SKEW_RATIO = 2.0


def _relabel_wanted(graph: CSRGraph, seed: int) -> bool:
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    sample = graph.out_degrees[rng.integers(0, n, size=min(SAMPLE_SIZE, n))]
    return float(sample.mean()) > SKEW_RATIO * max(float(np.median(sample)), 1.0)


def graphit_tc(graph: CSRGraph, seed: int = 0, intersect: str = "hash") -> int:
    """Order-invariant TC; ``intersect`` picks the set-intersection method."""
    if _relabel_wanted(graph, seed):
        counters.note("relabelled")
        graph = permute(graph, degree_order_permutation(graph, ascending=True))
    n = graph.num_vertices
    src, dst = graph.edge_array()
    keep = dst > src
    src, dst = src[keep], dst[keep]
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])

    total = 0
    if intersect == "hash":
        stamp = np.zeros(n, dtype=bool)
        for u in range(n):
            row = dst[indptr[u]: indptr[u + 1]]
            if row.size < 2:
                continue
            stamp[row] = True
            starts, ends = indptr[row], indptr[row + 1]
            chunks = [dst[s:e] for s, e in zip(starts, ends) if e > s]
            if chunks:
                targets = np.concatenate(chunks)
                counters.add_edges(targets.size + row.size)
                total += int(stamp[targets].sum())
            stamp[row] = False
    else:
        for u in range(n):
            row = dst[indptr[u]: indptr[u + 1]]
            if row.size < 2:
                continue
            starts, ends = indptr[row], indptr[row + 1]
            chunks = [dst[s:e] for s, e in zip(starts, ends) if e > s]
            if not chunks:
                continue
            targets = np.concatenate(chunks)
            counters.add_edges(targets.size + row.size)
            position = np.searchsorted(row, targets)
            position[position == row.size] = 0
            total += int((row[position] == targets).sum())
    return total
