"""GraphIt schedule selection: defaults plus per-graph Optimized schedules.

Under Baseline rules GraphIt runs one default schedule per kernel (internal
hybrid heuristics allowed).  Under Optimized rules the paper's GraphIt team
specialized schedules to the known size/structure of each graph; this table
records the specializations the paper describes:

* BFS on Road: push-only (skip the active-count check overhead);
* PR on the social graphs (Twitter/Kron/Urand): cache tiling — Web "had
  good locality and did not benefit as much";
* CC on Road: label propagation with short-circuiting;
* BC on Road: sparse frontier instead of a bitvector;
* TC on Road: the naive intersection method (better on small graphs).
"""

from __future__ import annotations

from ..graphitc import Direction, FrontierLayout, Schedule

__all__ = ["baseline_schedule", "optimized_schedule"]

_DEFAULTS: dict[str, Schedule] = {
    "bfs": Schedule(direction=Direction.DENSE_PULL_SPARSE_PUSH),
    "sssp": Schedule(direction=Direction.SPARSE_PUSH, bucket_fusion=True),
    "cc": Schedule(direction=Direction.SPARSE_PUSH),
    "pr": Schedule(direction=Direction.SPARSE_PUSH, num_segments=0),
    "bc": Schedule(
        direction=Direction.DENSE_PULL_SPARSE_PUSH,
        frontier=FrontierLayout.BITVECTOR,
    ),
    "tc": Schedule(direction=Direction.SPARSE_PUSH),
}

_OPTIMIZED_OVERRIDES: dict[tuple[str, str], Schedule] = {
    ("bfs", "road"): _DEFAULTS["bfs"].with_(direction=Direction.SPARSE_PUSH),
    ("pr", "twitter"): _DEFAULTS["pr"].with_(num_segments=8),
    ("pr", "kron"): _DEFAULTS["pr"].with_(num_segments=8),
    ("pr", "urand"): _DEFAULTS["pr"].with_(num_segments=8),
    ("bc", "road"): _DEFAULTS["bc"].with_(frontier=FrontierLayout.SPARSE_ARRAY),
}


def baseline_schedule(kernel: str) -> Schedule:
    """The default (Baseline-rules) schedule for a kernel."""
    return _DEFAULTS[kernel]


def optimized_schedule(kernel: str, graph_name: str) -> Schedule:
    """The per-graph Optimized schedule (default when not specialized)."""
    return _OPTIMIZED_OVERRIDES.get((kernel, graph_name), _DEFAULTS[kernel])
