"""GraphIt: algorithms decoupled from schedules (the DSL framework).

Kernels follow Table III's GraphIt column: direction-optimizing BFS,
delta-stepping SSSP *with bucket fusion*, label-propagation CC (its known
weakness — no sampling algorithms in the DSL), Jacobi PR (cache-tiled when
Optimized), Brandes BC with bitvector frontiers and a transposed backward
pass, and order-invariant TC.  Baseline runs use the default schedules;
Optimized runs look up the per-graph schedule table recorded from the
paper's Section V narrative.
"""

from __future__ import annotations

import numpy as np

from ..frameworks.base import Framework, FrameworkAttributes, RunContext
from ..graphs import CSRGraph
from .bc import graphit_bc
from .bfs import graphit_bfs
from .cc import graphit_cc
from .pagerank import graphit_pagerank
from .schedules import baseline_schedule, optimized_schedule
from .sssp import graphit_sssp
from .tc import graphit_tc

__all__ = [
    "GraphItFramework",
    "graphit_bfs",
    "graphit_sssp",
    "graphit_cc",
    "graphit_pagerank",
    "graphit_bc",
    "graphit_tc",
    "baseline_schedule",
    "optimized_schedule",
]


class GraphItFramework(Framework):
    """GraphIt as a Framework."""

    attributes = FrameworkAttributes(
        name="graphit",
        full_name="GraphIt",
        framework_type="domain-specific language compiler",
        graph_structure="outgoing & incoming edges w/ (opt.) blocking",
        abstraction="vertex or edge centric",
        synchronization="level-synchronous",
        dependences="C++11, OpenMP, cilk (original); NumPy (this reproduction)",
        intended_users="graph domain experts",
        algorithms={
            "bfs": "Direction-optimizing (schedulable)",
            "sssp": "Delta-stepping + bucket fusion",
            "cc": "Label propagation",
            "pr": "Jacobi SpMV (+ cache tiling when Optimized)",
            "bc": "Brandes (bitvector frontier, transposed backward)",
            "tc": "Order invariant + heuristic relabel",
        },
        unmodelled=(
            "compiler autotuner (OpenTuner)",
            "cache-tiling locality benefit (structure executed, effect not)",
        ),
    )

    def _schedule(self, kernel: str, ctx: RunContext):
        if ctx.optimized and ctx.graph_name:
            return optimized_schedule(kernel, ctx.graph_name)
        return baseline_schedule(kernel)

    def bfs(self, graph: CSRGraph, source: int, ctx: RunContext = RunContext()) -> np.ndarray:
        return graphit_bfs(graph, source, self._schedule("bfs", ctx))

    def sssp(self, graph: CSRGraph, source: int, ctx: RunContext = RunContext()) -> np.ndarray:
        schedule = self._schedule("sssp", ctx).with_(delta=ctx.delta)
        return graphit_sssp(graph, source, schedule)

    def pagerank(
        self,
        graph: CSRGraph,
        ctx: RunContext = RunContext(),
        damping: float = 0.85,
        tolerance: float = 1e-4,
        max_iterations: int = 100,
    ) -> np.ndarray:
        return graphit_pagerank(
            graph, self._schedule("pr", ctx), damping, tolerance, max_iterations
        )

    def connected_components(self, graph: CSRGraph, ctx: RunContext = RunContext()) -> np.ndarray:
        short_circuit = ctx.optimized and ctx.graph_name == "road"
        return graphit_cc(graph, self._schedule("cc", ctx), short_circuit=short_circuit)

    def betweenness(
        self, graph: CSRGraph, sources: np.ndarray, ctx: RunContext = RunContext()
    ) -> np.ndarray:
        return graphit_bc(graph, sources, self._schedule("bc", ctx))

    def triangle_count(self, graph: CSRGraph, ctx: RunContext = RunContext()) -> int:
        undirected = graph.to_undirected() if graph.directed else graph
        intersect = "merge" if (ctx.optimized and ctx.graph_name == "road") else "hash"
        return graphit_tc(undirected, seed=ctx.seed, intersect=intersect)
