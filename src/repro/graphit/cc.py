"""GraphIt connected components: label propagation (the paper's weak spot).

GraphIt does not support sampling-based algorithms, so its CC is min-label
propagation: O(E * D) against Afforest's O(V)-ish — the reason the paper's
GraphIt CC falls to 0.17% of reference on Road (label chains as long as the
diameter).  The Optimized Road schedule adds *short-circuiting*: after each
sweep, labels jump to their label's label (``comp = comp[comp]``), which
collapses chains and bought the paper's team a 3x speedup — still far from
Afforest, exactly as Table V shows.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphitc import Schedule, edgeset_apply_all
from ..graphs import CSRGraph

__all__ = ["graphit_cc"]


def graphit_cc(
    graph: CSRGraph, schedule: Schedule, short_circuit: bool = False
) -> np.ndarray:
    """Label propagation CC; returns min-label per weak component."""
    n = graph.num_vertices
    comp = np.arange(n, dtype=np.int64)

    def propagate(srcs: np.ndarray, dsts: np.ndarray, weights: np.ndarray) -> np.ndarray:
        del weights
        np.minimum.at(comp, dsts, comp[srcs])
        np.minimum.at(comp, srcs, comp[dsts])
        return np.zeros(dsts.size, dtype=bool)

    while True:
        counters.add_iteration()
        before = comp.copy()
        edgeset_apply_all(graph, propagate, schedule, pull=False)
        if short_circuit:
            counters.note("short_circuits")
            comp[:] = comp[comp]
        if np.array_equal(before, comp):
            break
    # Final pointer chase: labels propagate as values, so resolve chains.
    while True:
        resolved = comp[comp]
        if np.array_equal(resolved, comp):
            return comp
        comp = resolved
