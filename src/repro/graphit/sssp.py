"""GraphIt SSSP: delta-stepping on the bucketed priority queue with fusion.

Bucket fusion is GraphIt's contribution (Zhang et al., CGO'20) and the
paper's Road SSSP story: before GAP adopted it, GraphIt was >7x faster
there.  The relaxation itself is an ordinary push-mode edgeset.apply; the
ordering and fusion live in :class:`BucketPriorityQueue`.
"""

from __future__ import annotations

import numpy as np

from ..graphitc import BucketPriorityQueue, Schedule, VertexSet, edgeset_apply_from
from ..graphs import CSRGraph

__all__ = ["graphit_sssp"]


def graphit_sssp(graph: CSRGraph, source: int, schedule: Schedule) -> np.ndarray:
    """Delta-stepping SSSP under the given schedule; returns distances."""
    n = graph.num_vertices
    delta = schedule.delta
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0

    def relax_edges(srcs: np.ndarray, dsts: np.ndarray, weights: np.ndarray) -> np.ndarray:
        candidate = dist[srcs] + weights
        better = candidate < dist[dsts]
        np.minimum.at(dist, dsts[better], candidate[better])
        return better

    def relax(members: np.ndarray) -> np.ndarray:
        frontier = VertexSet.from_ids(n, members, schedule.frontier)
        improved = edgeset_apply_from(graph, frontier, relax_edges, schedule)
        return improved.ids()

    queue = BucketPriorityQueue(fusion=schedule.bucket_fusion)
    queue.push(np.array([source], dtype=np.int64), np.array([0], dtype=np.int64))
    queue.process(relax, dist, delta)
    return dist
