"""GraphIt PageRank: Jacobi SpMV, optionally cache-tiled (Optimized).

The algorithm is a topology-driven full-edge apply per iteration (Jacobi,
per Table III).  The Optimized schedule tiles the graph into cache-sized
segments (Zhang et al., "Making caches work for graph analytics"): the
paper reports the preprocessing amortizes within 2-5 of PR's ~20
iterations.  The tiling's *locality* benefit is a hardware effect this
substrate cannot express — the segmentation and its bookkeeping are
faithfully executed and counted, and EXPERIMENTS.md discusses the
divergence.
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from ..graphitc import Schedule, SegmentedEdges, edgeset_apply_all
from ..graphs import CSRGraph

__all__ = ["graphit_pagerank"]


def graphit_pagerank(
    graph: CSRGraph,
    schedule: Schedule,
    damping: float = 0.85,
    tolerance: float = 1e-4,
    max_iterations: int = 100,
) -> np.ndarray:
    """Jacobi PageRank under the given schedule; returns scores."""
    n = graph.num_vertices
    base = (1.0 - damping) / n
    scores = np.full(n, 1.0 / n, dtype=np.float64)
    out_degrees = graph.out_degrees.astype(np.float64)
    has_out = out_degrees > 0
    safe_degrees = np.where(has_out, out_degrees, 1.0)
    new_rank = np.zeros(n, dtype=np.float64)
    contrib = np.zeros(n, dtype=np.float64)

    def accumulate(srcs: np.ndarray, dsts: np.ndarray, weights: np.ndarray) -> np.ndarray:
        del weights
        np.add.at(new_rank, dsts, contrib[srcs])
        return np.zeros(dsts.size, dtype=bool)

    # Cache-tiling preprocessing, built once and amortized over iterations
    # (the paper: "amortized within 2-5 iterations").
    segmented = (
        SegmentedEdges(graph, schedule.num_segments, pull=True)
        if schedule.num_segments > 1
        else None
    )

    for _ in range(max_iterations):
        counters.add_iteration()
        np.divide(scores, safe_degrees, out=contrib)
        contrib[~has_out] = 0.0
        new_rank[:] = 0.0
        edgeset_apply_all(graph, accumulate, schedule, pull=True, segmented=segmented)
        updated = base + damping * new_rank
        change = float(np.abs(updated - scores).sum())
        scores[:] = updated
        if change < tolerance:
            break
    return scores
