"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without also catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """A graph, edge list, or CSR structure is malformed."""


class GraphBLASError(ReproError):
    """Base class for errors raised by the semiring (GraphBLAS-style) engine."""


class DimensionMismatchError(GraphBLASError):
    """Operands of a linear-algebra operation have incompatible shapes."""


class DomainMismatchError(GraphBLASError):
    """Operands of a linear-algebra operation have incompatible types."""


class InvalidValueError(GraphBLASError):
    """An argument value is outside the accepted domain."""


class SchedulingError(ReproError):
    """A GraphIt-style schedule is invalid for the algorithm it is applied to."""


class VerificationError(ReproError):
    """A kernel produced an output that fails the GAP verification rules."""


class BenchmarkConfigError(ReproError):
    """The benchmark harness was configured inconsistently."""


class TrialTimeoutError(ReproError):
    """A benchmark trial exceeded its per-trial wall-clock deadline."""


class CellFailedError(ReproError):
    """A strict parallel campaign stopped on a failed benchmark cell.

    Raised by the process-pool executor in ``strict`` mode, where the
    original exception died with the worker; the message carries the
    cell identity and the worker-side error text.
    """


class ArchiveError(ReproError):
    """A results-archive operation failed (unknown run, ambiguous ref,
    or a corrupt/unreadable archive layout)."""


class JournalError(ReproError):
    """A checkpoint journal cannot be used (fingerprint mismatch with the
    resuming campaign, wrong version, or corruption before the final
    line — a torn *trailing* line is expected after a crash and handled,
    not an error)."""


class ServiceError(ReproError):
    """A benchmark-service operation failed (invalid campaign request,
    server not reachable, submission rejected, or a protocol violation
    in the client/server exchange)."""


class CampaignAborted(BaseException):
    """The campaign was deliberately terminated (SIGTERM).

    Derives from ``BaseException``, not :class:`ReproError`: fault
    isolation converts ``Exception`` into per-cell failure records, and an
    operator's termination request must unwind the whole campaign —
    flushing the checkpoint journal and releasing shared memory — rather
    than be recorded as one more broken cell.
    """


class UnknownFrameworkError(ReproError):
    """A framework name was requested that is not in the registry."""


class UnknownKernelError(ReproError):
    """A kernel name was requested that is not part of the GAP suite."""


class UnknownGraphError(ReproError):
    """A graph name was requested that is not part of the GAP corpus."""
