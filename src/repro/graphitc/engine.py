"""GraphIt execution engine: interprets schedules over edgeset.apply.

The *algorithm* side of a GraphIt program reduces to two constructs:

* ``edgeset_apply_from`` — apply a vectorized edge function to the edges
  leaving a frontier ("from" set), optionally restricted by a destination
  filter; returns the set of modified destinations (``applyModified``);
* ``edgeset_apply_all`` — apply an edge function to every edge (topology-
  driven operators like PageRank), optionally cache-tiled into segments.

The *schedule* decides direction (sparse push, dense pull, or the hybrid
that picks per step), frontier layout, deduplication, and tiling.  Edge
functions receive ``(sources, destinations, weights)`` and return the mask
of destination entries they modified; state lives in the caller's arrays,
mirroring GraphIt's vertex-data model where the compiler inserts the
atomics.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core import counters
from ..graphs import CSRGraph
from ..la import gather_edges, gather_edges_weighted, unique_ids
from .schedule import Direction, FrontierLayout, Schedule
from .vertexset import VertexSet

__all__ = ["edgeset_apply_from", "edgeset_apply_all", "SegmentedEdges"]

# Hybrid threshold, as in GraphIt's generated code: pull when the frontier's
# outgoing-edge volume exceeds this fraction of all edges.
HYBRID_EDGE_FRACTION = 20

EdgeFunction = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]


def _expand(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray | None,
    vertices: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    if weights is None:
        sources, targets = gather_edges(indptr, indices, vertices)
        return sources, targets, np.ones(targets.size, dtype=np.float64)
    sources, targets, edge_weights = gather_edges_weighted(
        indptr, indices, weights, vertices
    )
    return sources, targets, edge_weights.astype(np.float64)


def edgeset_apply_from(
    graph: CSRGraph,
    frontier: VertexSet,
    apply_fn: EdgeFunction,
    schedule: Schedule,
    to_filter: np.ndarray | None = None,
) -> VertexSet:
    """Apply ``apply_fn`` to the edges leaving ``frontier``.

    Args:
        graph: Input graph.
        frontier: The "from" vertexset.
        apply_fn: Vectorized edge function; returns the boolean mask of
            modified destination entries.
        schedule: Direction / layout / dedup decisions.
        to_filter: Optional boolean array over vertices; only edges whose
            destination passes the filter are applied (GraphIt's ``to``
            clause, e.g. "not yet visited").

    Returns:
        The vertexset of modified destinations, in the schedule's layout.
    """
    direction = schedule.direction
    if direction is Direction.DENSE_PULL_SPARSE_PUSH:
        scout = int(graph.out_degrees[frontier.ids()].sum()) + frontier.size()
        use_pull = scout > graph.num_edges // HYBRID_EDGE_FRACTION
        direction = Direction.DENSE_PULL if use_pull else Direction.SPARSE_PUSH

    if direction is Direction.DENSE_PULL:
        # Iterate candidate destinations, scanning in-edges for frontier hits.
        bits = frontier.to_layout(FrontierLayout.BITVECTOR)
        candidates = (
            np.flatnonzero(to_filter)
            if to_filter is not None
            else np.arange(graph.num_vertices, dtype=np.int64)
        )
        dsts, srcs, weights = _expand(
            graph.in_indptr, graph.in_indices, graph.in_weights, candidates
        )
        counters.add_edges(srcs.size)
        hits = bits.contains(srcs)
        srcs, dsts, weights = srcs[hits], dsts[hits], weights[hits]
    else:
        members = frontier.to_layout(FrontierLayout.SPARSE_ARRAY).ids()
        srcs, dsts, weights = _expand(graph.indptr, graph.indices, graph.weights, members)
        counters.add_edges(srcs.size)
        if to_filter is not None and dsts.size:
            allowed = to_filter[dsts]
            srcs, dsts, weights = srcs[allowed], dsts[allowed], weights[allowed]

    if dsts.size == 0:
        return VertexSet(graph.num_vertices, schedule.frontier)
    modified = apply_fn(srcs, dsts, weights)
    out = dsts[modified]
    if schedule.deduplicate:
        out = unique_ids(out, graph.num_vertices)
    return VertexSet.from_ids(graph.num_vertices, out, schedule.frontier)


class SegmentedEdges:
    """Cache-tiled edge partition (GraphIt's Optimized-PR preprocessing).

    The graph's edges are partitioned by *source* range into segments whose
    source-value working set would fit in cache.  Real GraphIt builds these
    subgraphs once and amortizes the cost within 2-5 PR iterations (the
    paper's Section V-D); likewise this structure is built once per kernel
    invocation and reused every iteration.
    """

    def __init__(self, graph: CSRGraph, num_segments: int, pull: bool = True) -> None:
        del pull  # the edge set is the same either way; see below
        # Edges sorted by source are exactly the out-CSR's storage order, so
        # the partition falls out of ``indptr`` directly — no argsort.  (The
        # historical construction expanded the in-adjacency and stably
        # re-sorted it by source, producing this same edge sequence at
        # O(E log E) — enough to eat the tiling's amortization budget.)
        sources = np.repeat(
            np.arange(graph.num_vertices, dtype=np.int64), np.diff(graph.indptr)
        )
        targets = graph.indices
        boundaries = np.linspace(
            0, graph.num_vertices, num_segments + 1, dtype=np.int64
        )
        cuts = graph.indptr[boundaries]
        self.segments: list[tuple[np.ndarray, np.ndarray]] = [
            (sources[cuts[i]: cuts[i + 1]], targets[cuts[i]: cuts[i + 1]])
            for i in range(num_segments)
            if cuts[i + 1] > cuts[i]
        ]
        self.num_edges = int(sources.size)

    def apply(self, apply_fn: EdgeFunction) -> None:
        """Run the edge function segment by segment."""
        counters.add_edges(self.num_edges)
        weights = np.empty(0)
        for sources, targets in self.segments:
            counters.note("cache_segments")
            apply_fn(sources, targets, weights)


def edgeset_apply_all(
    graph: CSRGraph,
    apply_fn: EdgeFunction,
    schedule: Schedule,
    pull: bool = True,
    segmented: SegmentedEdges | None = None,
) -> None:
    """Apply ``apply_fn`` to every edge (topology-driven operators).

    With ``schedule.num_segments > 1`` the edges are processed through a
    :class:`SegmentedEdges` tiling; callers running many sweeps should
    build it once and pass it in (the amortization the paper describes).
    """
    if schedule.num_segments > 1:
        if segmented is None:
            segmented = SegmentedEdges(graph, schedule.num_segments, pull)
        segmented.apply(apply_fn)
        return
    indptr = graph.in_indptr if pull else graph.indptr
    indices = graph.in_indices if pull else graph.indices
    all_vertices = np.arange(graph.num_vertices, dtype=np.int64)
    counters.add_edges(indices.size)
    owners, others, weights = _expand(indptr, indices, None, all_vertices)
    apply_fn(others if pull else owners, owners if pull else others, weights)
