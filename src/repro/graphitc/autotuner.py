"""Schedule autotuner: GraphIt's OpenTuner-style search, miniaturized.

The paper notes GraphIt "has a built-in autotuner based on OpenTuner that
explores the optimization space and finds high-performance schedules
quickly using methods such as AUC bandit and greedy mutation".  This
module provides that capability for our Schedule space: given a runnable
parameterized by a :class:`Schedule`, it searches direction, frontier
layout, deduplication, tiling, and delta with a greedy-mutation loop
seeded by a handful of random probes, and returns the fastest schedule
found.

Tuning time is deliberately *not* part of the returned measurement — the
Optimized rule set of the paper explicitly excludes tuning effort from
the timed results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import SchedulingError
from .schedule import Direction, FrontierLayout, Schedule

__all__ = ["TuningResult", "autotune"]

# The discrete mutation space per schedule dimension.
_DIRECTIONS = (
    Direction.SPARSE_PUSH,
    Direction.DENSE_PULL,
    Direction.DENSE_PULL_SPARSE_PUSH,
)
_LAYOUTS = (FrontierLayout.SPARSE_ARRAY, FrontierLayout.BITVECTOR)
_SEGMENTS = (0, 2, 4, 8, 16)
_DELTAS = (4, 16, 64, 256)


@dataclass
class TuningResult:
    """Outcome of a schedule search."""

    best_schedule: Schedule
    best_seconds: float
    evaluations: int
    history: list[tuple[Schedule, float]] = field(default_factory=list)


def _random_schedule(rng: np.random.Generator, tunable: dict) -> Schedule:
    """Sample a valid random schedule from the space."""
    while True:
        candidate = {
            "direction": _DIRECTIONS[rng.integers(len(_DIRECTIONS))],
            "frontier": _LAYOUTS[rng.integers(len(_LAYOUTS))],
            "deduplicate": bool(rng.integers(2)),
            "num_segments": int(_SEGMENTS[rng.integers(len(_SEGMENTS))]),
            "delta": int(_DELTAS[rng.integers(len(_DELTAS))]),
            "bucket_fusion": bool(rng.integers(2)),
        }
        candidate.update(tunable.get("fixed", {}))
        try:
            return Schedule(**candidate)
        except SchedulingError:
            continue  # invalid combination; resample


def _mutate(schedule: Schedule, rng: np.random.Generator, tunable: dict) -> Schedule:
    """Change one dimension of the schedule (greedy mutation step)."""
    fixed = tunable.get("fixed", {})
    dimensions = [d for d in (
        "direction", "frontier", "deduplicate", "num_segments", "delta",
        "bucket_fusion",
    ) if d not in fixed]
    for _ in range(16):
        dimension = dimensions[rng.integers(len(dimensions))]
        changes: dict = {}
        if dimension == "direction":
            changes["direction"] = _DIRECTIONS[rng.integers(len(_DIRECTIONS))]
        elif dimension == "frontier":
            changes["frontier"] = _LAYOUTS[rng.integers(len(_LAYOUTS))]
        elif dimension == "deduplicate":
            changes["deduplicate"] = not schedule.deduplicate
        elif dimension == "num_segments":
            changes["num_segments"] = int(_SEGMENTS[rng.integers(len(_SEGMENTS))])
        elif dimension == "delta":
            changes["delta"] = int(_DELTAS[rng.integers(len(_DELTAS))])
        else:
            changes["bucket_fusion"] = not schedule.bucket_fusion
        try:
            mutated = schedule.with_(**changes)
        except SchedulingError:
            continue
        if mutated != schedule:
            return mutated
    return schedule


def autotune(
    run: Callable[[Schedule], None],
    budget: int = 12,
    seed: int = 0,
    repeats: int = 1,
    fixed: dict | None = None,
) -> TuningResult:
    """Search the schedule space for the fastest configuration of ``run``.

    Args:
        run: Callable executing the kernel under a given schedule.  It is
            invoked ``repeats`` times per candidate; the best time counts.
        budget: Total number of candidate schedules to evaluate.
        seed: RNG seed (the search is deterministic given the runtimes).
        repeats: Timing repetitions per candidate.
        fixed: Schedule fields to pin (e.g. ``{"delta": 64}`` when the
            kernel is unordered and delta is meaningless).

    Returns:
        The fastest schedule, its time, and the full evaluation history.
    """
    rng = np.random.default_rng(seed)
    tunable = {"fixed": dict(fixed or {})}

    def measure(schedule: Schedule) -> float:
        best = np.inf
        for _ in range(repeats):
            start = time.perf_counter()
            run(schedule)
            best = min(best, time.perf_counter() - start)
        return best

    history: list[tuple[Schedule, float]] = []
    # Exploration: random probes for the first third of the budget.
    probes = max(2, budget // 3)
    for _ in range(probes):
        candidate = _random_schedule(rng, tunable)
        history.append((candidate, measure(candidate)))

    best_schedule, best_seconds = min(history, key=lambda pair: pair[1])
    # Exploitation: greedy mutation around the incumbent.
    for _ in range(budget - probes):
        candidate = _mutate(best_schedule, rng, tunable)
        seconds = measure(candidate)
        history.append((candidate, seconds))
        if seconds < best_seconds:
            best_schedule, best_seconds = candidate, seconds

    return TuningResult(
        best_schedule=best_schedule,
        best_seconds=best_seconds,
        evaluations=len(history),
        history=history,
    )
