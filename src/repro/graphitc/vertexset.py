"""GraphIt vertexsets: active-vertex collections with schedulable layout.

A vertexset is the DSL's frontier abstraction.  The *algorithm* only ever
asks for membership, size, and iteration; the *schedule* decides whether
the backing store is a sparse index array or a dense bitvector, and the
engine converts between them as the schedule demands.  Conversions report
to the work counters: the paper attributes real costs to frontier/vertexset
creation mechanics (GAP vs GraphIt BFS on Road).
"""

from __future__ import annotations

import numpy as np

from ..core import counters
from .schedule import FrontierLayout

__all__ = ["VertexSet"]


class VertexSet:
    """A set of vertex ids with a schedule-chosen physical layout."""

    __slots__ = ("n", "layout", "_ids", "_bits")

    def __init__(self, n: int, layout: FrontierLayout = FrontierLayout.SPARSE_ARRAY) -> None:
        self.n = int(n)
        self.layout = layout
        self._ids = np.empty(0, dtype=np.int64)
        self._bits: np.ndarray | None = None
        if layout is FrontierLayout.BITVECTOR:
            self._bits = np.zeros(n, dtype=bool)

    @classmethod
    def from_ids(
        cls, n: int, ids: np.ndarray, layout: FrontierLayout = FrontierLayout.SPARSE_ARRAY
    ) -> "VertexSet":
        vs = cls(n, layout)
        ids = np.asarray(ids, dtype=np.int64)
        if layout is FrontierLayout.BITVECTOR:
            vs._bits[ids] = True
        else:
            vs._ids = np.unique(ids)
        return vs

    def size(self) -> int:
        """Number of member vertices."""
        if self.layout is FrontierLayout.BITVECTOR:
            return int(self._bits.sum())
        return int(self._ids.size)

    def ids(self) -> np.ndarray:
        """Member ids as a sorted array (materializes from a bitvector)."""
        if self.layout is FrontierLayout.BITVECTOR:
            return np.flatnonzero(self._bits)
        return self._ids

    def contains(self, ids: np.ndarray) -> np.ndarray:
        """Boolean membership test for an id array."""
        if self.layout is FrontierLayout.BITVECTOR:
            return self._bits[ids]
        position = np.searchsorted(self._ids, ids)
        if self._ids.size == 0:
            return np.zeros(np.shape(ids), dtype=bool)
        position = np.minimum(position, self._ids.size - 1)
        return self._ids[position] == ids

    def to_layout(self, layout: FrontierLayout) -> "VertexSet":
        """Convert to the requested layout (a timed, counted operation)."""
        if layout is self.layout:
            return self
        counters.note("frontier_conversions")
        return VertexSet.from_ids(self.n, self.ids(), layout)

    def __bool__(self) -> bool:
        return self.size() > 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VertexSet(n={self.n}, size={self.size()}, layout={self.layout.value})"
