"""GraphIt's bucketing-based priority queue with bucket fusion (CGO'20).

Ordered algorithms (delta-stepping SSSP) process work in priority buckets.
The bucket-fusion optimization the paper spotlights: when a thread sees the
*next* refill of the current bucket has the same priority, it processes it
immediately in a local loop instead of synchronizing — cutting rounds by
~10x on Road while maintaining strict priority order.  A size threshold
guards against load imbalance; refills above it still synchronize.
"""

from __future__ import annotations

import numpy as np

from ..core import counters

__all__ = ["BucketPriorityQueue"]

FUSION_THRESHOLD = 1024


class BucketPriorityQueue:
    """Priority buckets over integer priorities with optional fusion."""

    def __init__(self, fusion: bool = True, fusion_threshold: int = FUSION_THRESHOLD) -> None:
        self.fusion = bool(fusion)
        self.fusion_threshold = int(fusion_threshold)
        self._buckets: dict[int, list[np.ndarray]] = {}

    def push(self, vertices: np.ndarray, priorities: np.ndarray) -> None:
        """Insert vertices under their integer priorities."""
        for priority in np.unique(priorities):
            self._buckets.setdefault(int(priority), []).append(
                vertices[priorities == priority]
            )

    def empty(self) -> bool:
        """Whether no buckets remain."""
        return not self._buckets

    def pop_lowest(self) -> tuple[int, np.ndarray]:
        """Remove and return the entire lowest-priority bucket."""
        lowest = min(self._buckets)
        chunks = self._buckets.pop(lowest)
        return lowest, np.unique(np.concatenate(chunks))

    def process(self, relax, dist: np.ndarray, delta: int) -> None:
        """Drain the queue in priority order.

        ``relax(members)`` relaxes a batch and returns the vertices whose
        distance improved; re-bucketing uses ``dist`` and ``delta``.  With
        fusion enabled, same-priority refills below the threshold are
        processed in the local loop (counted as ``fused_rounds``); without
        it every refill costs a synchronization round.
        """
        while not self.empty():
            priority, members = self.pop_lowest()
            # Lazy deletion: drop entries re-bucketed elsewhere.
            members = members[(dist[members] // delta).astype(np.int64) == priority]
            while members.size:
                counters.add_round()
                refills = self._relax_and_rebucket(relax, members, dist, delta, priority)
                if self.fusion:
                    while 0 < refills.size <= self.fusion_threshold:
                        counters.note("fused_rounds")
                        refills = self._relax_and_rebucket(
                            relax, refills, dist, delta, priority
                        )
                members = refills

    def _relax_and_rebucket(
        self, relax, members: np.ndarray, dist: np.ndarray, delta: int, priority: int
    ) -> np.ndarray:
        """One relaxation; returns same-priority refills, pushes the rest."""
        improved = relax(members)
        if improved.size == 0:
            return improved
        landing = (dist[improved] // delta).astype(np.int64)
        same = landing == priority
        others = improved[~same]
        if others.size:
            self.push(others, landing[~same])
        return improved[same]
