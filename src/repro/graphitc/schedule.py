"""GraphIt scheduling language: optimization choices decoupled from algorithms.

GraphIt's core idea (Section III-D of the paper) is that the *algorithm*
("apply this function over these edges") says nothing about *how* to run
it; a separate schedule composes direction choice, frontier data layout,
deduplication, parallelization, and cache/NUMA tiling.  This module is the
schedule side: a validated, declarative description the execution engine
interprets.  Invalid combinations raise :class:`SchedulingError` at
construction — GraphIt's compiler, likewise, rejects them statically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from ..errors import SchedulingError

__all__ = ["Direction", "FrontierLayout", "Schedule"]


class Direction(enum.Enum):
    """Edge traversal direction for an edgeset.apply."""

    SPARSE_PUSH = "SparsePush"
    DENSE_PULL = "DensePull"
    # Hybrid: the runtime picks push or pull per step from frontier density.
    DENSE_PULL_SPARSE_PUSH = "DensePull-SparsePush"


class FrontierLayout(enum.Enum):
    """Data layout of the active-vertex set."""

    SPARSE_ARRAY = "sparse"
    BITVECTOR = "bitvector"


@dataclass(frozen=True)
class Schedule:
    """One operator's schedule (the ``s1:`` label target in GraphIt).

    Attributes:
        direction: Traversal direction policy.
        frontier: Active-set layout; bitvectors win when frontiers are
            large, sparse arrays when small (the paper's BC discussion).
        deduplicate: Remove duplicate activations within a step.
        num_segments: Cache-tiling segment count for full-edge sweeps
            (GraphIt's Optimized PR); 0 disables tiling.
        bucket_fusion: For ordered (priority-bucket) operators: process
            same-priority refills without a synchronization round.
        delta: Bucket width for ordered operators.
    """

    direction: Direction = Direction.DENSE_PULL_SPARSE_PUSH
    frontier: FrontierLayout = FrontierLayout.SPARSE_ARRAY
    deduplicate: bool = True
    num_segments: int = 0
    bucket_fusion: bool = False
    delta: int = 16

    def __post_init__(self) -> None:
        if self.num_segments < 0:
            raise SchedulingError("num_segments must be >= 0")
        if self.delta <= 0:
            raise SchedulingError("delta must be positive")
        if (
            self.direction is Direction.DENSE_PULL
            and self.frontier is FrontierLayout.SPARSE_ARRAY
        ):
            # Pull steps iterate destinations; a sparse source frontier
            # would be scanned per edge.  GraphIt converts it to a bitvector
            # (or boolmap); we require the schedule to say so explicitly.
            raise SchedulingError(
                "DensePull requires a bitvector frontier layout"
            )

    def with_(self, **changes) -> "Schedule":
        """Return a copy with the given fields replaced (builder style)."""
        return replace(self, **changes)
