"""GraphIt-style DSL substrate: schedules, vertexsets, engine, buckets.

The algorithm/optimization decoupling of GraphIt, reduced to a library:
algorithms call :func:`edgeset_apply_from` / :func:`edgeset_apply_all`
with a :class:`Schedule` that encodes the optimization decisions the
GraphIt scheduling language would.
"""

from .autotuner import TuningResult, autotune
from .buckets import BucketPriorityQueue
from .engine import SegmentedEdges, edgeset_apply_all, edgeset_apply_from
from .schedule import Direction, FrontierLayout, Schedule
from .vertexset import VertexSet

__all__ = [
    "BucketPriorityQueue",
    "TuningResult",
    "autotune",
    "Direction",
    "FrontierLayout",
    "Schedule",
    "SegmentedEdges",
    "VertexSet",
    "edgeset_apply_all",
    "edgeset_apply_from",
]
