"""Campaign-as-a-service: a long-running memoizing benchmark server.

The archive made runs content-addressed and the cell index
(:mod:`repro.store.cellindex`) makes individual measurements addressable;
this package is the system that exploits both: a server that accepts
campaign specs over local HTTP, splits them into cells, serves every cell
it has already measured straight from the archive, coalesces concurrent
identical submissions into one execution, runs only genuine misses
through the resilient warm-pool executor, and streams per-cell results
back to clients as they land.

* :mod:`~repro.service.protocol` — the wire format: validated
  :class:`CampaignRequest`, canonical cell enumeration, event schema;
* :mod:`~repro.service.server` — :class:`BenchmarkService` (dedup,
  coalescing, the single execution engine, journal crash-recovery) and
  the threaded HTTP front end;
* :mod:`~repro.service.client` — :class:`ServiceClient`, a
  persistent-connection NDJSON-streaming client.

CLI: ``repro serve`` / ``repro submit`` / ``repro status``; see
``docs/SERVICE.md`` for the API, dedup semantics, and durability model.
"""

from .protocol import EVENT_KINDS, CampaignRequest, encode_event
from .server import BenchmarkService, ServiceHTTPServer, serve_forever
from .client import ServiceClient

__all__ = [
    "BenchmarkService",
    "CampaignRequest",
    "EVENT_KINDS",
    "ServiceClient",
    "ServiceHTTPServer",
    "encode_event",
    "serve_forever",
]
