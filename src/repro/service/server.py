"""The memoizing benchmark server.

:class:`BenchmarkService` is the core (transport-free) machine; the HTTP
layer at the bottom of the module is a thin threaded front end over it.
The submission path:

1. **Classify** (under one lock): every cell of the request is digested
   (:func:`repro.store.cellindex.cell_digest`, spec+environment prefix
   hashed once per request) and becomes a *hit* (in the warm result
   cache or the persistent cell index), a *subscription* (an identical
   cell is already executing for an earlier submission — request
   coalescing), or an *owned miss*.
2. **Serve hits immediately**: cached cells stream back as pre-encoded
   event lines without touching the executor — the cache-first read
   path that keeps p95 flat under concurrent load.
3. **Execute misses** on the single engine thread through
   :func:`repro.core.executor.run_suite_parallel`, over one warm
   :class:`~repro.core.pool.WorkerPool` shared across all submissions
   (bounded in-flight compute: one executing job, a bounded queue of
   waiting jobs).  Every finalized cell is fsynced to a per-job
   checkpoint journal *before* it is streamed, so a crashed server can
   recover completed cells on restart (``repro serve --resume``).
4. **Archive + index**: the job's executed cells are archived as one
   content-addressed run; each successful cell's digest is durably
   appended to the cell index, making it a hit for every future
   submission.  Failures (error/timeout/skipped cells) are archived for
   the record but never memoized — a re-submission re-executes them.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from queue import Full, Queue, SimpleQueue
from typing import Callable, Iterator

from ..core.executor import run_suite_parallel
from ..core.pool import WorkerPool
from ..core.results import ResultSet, RunResult
from ..core.telemetry import Telemetry
from ..errors import JournalError, ReproError, ServiceError
from ..frameworks import Mode
from ..frameworks.registry import get as get_framework
from ..graphs.cache import GraphCache
from ..graphs.datasets import graph_identities
from ..resilience.journal import CheckpointJournal, campaign_fingerprint, read_journal
from ..store.archive import RunArchive
from ..store.cellindex import (
    cell_digest,
    identity_hasher,
    normalize_cell_key,
)
from ..store.environment import fingerprint
from ..store.integrity import (
    last_scrub_report,
    open_self_healing_index,
    quarantine_count,
    quarantine_run,
    verify_run,
)
from .protocol import CampaignRequest, encode_event

__all__ = ["BenchmarkService", "ServiceHTTPServer", "serve_forever"]

#: Cells kept in the in-memory hot cache (evicted entries reload from
#: the archive on next touch; the persistent index is never evicted).
DEFAULT_RESULT_CACHE_SIZE = 65536

#: Campaigns allowed to wait for the engine before submissions bounce.
DEFAULT_MAX_PENDING_JOBS = 16

#: Disk low-watermark: below this many free bytes at the archive root
#: the service degrades to hits-only read-only mode instead of risking
#: half-written runs.  Overridable per server (``--min-free-mb``) or via
#: the environment for subprocess harnesses.
DEFAULT_MIN_FREE_BYTES = 64 * 1024 * 1024

#: Environment overrides for the admission watermarks (used by the chaos
#: harness to force degraded mode deterministically in a subprocess).
MIN_FREE_BYTES_ENV = "REPRO_MIN_FREE_BYTES"
MIN_AVAILABLE_MEMORY_ENV = "REPRO_MIN_AVAILABLE_MEMORY"

#: Retry hint carried by ``degraded`` rejection events.
DEGRADED_RETRY_AFTER_SECONDS = 30.0

#: How often the watchdog checks that the engine thread is alive.
DEFAULT_WATCHDOG_INTERVAL = 1.0


def available_memory_bytes() -> int | None:
    """``MemAvailable`` from /proc/meminfo, or None where unreadable."""
    try:
        with open("/proc/meminfo", encoding="ascii") as stream:
            for line in stream:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


class _Inflight:
    """One currently-executing cell: who to notify, and the result so far."""

    __slots__ = ("subscribers", "line")

    def __init__(self) -> None:
        self.subscribers: list[SimpleQueue] = []
        self.line: bytes | None = None


class _Job:
    """One enqueued execution: a request's owned misses."""

    __slots__ = ("request", "spec", "hasher", "owned", "queue", "seq", "datasets")

    def __init__(self, request, spec, hasher, owned, queue, seq, datasets) -> None:
        self.request = request
        self.spec = spec
        self.hasher = hasher
        #: ``[(digest, cell_key), ...]`` in canonical order.
        self.owned = owned
        self.queue = queue
        self.seq = seq
        #: Dataset provenance map (ref -> path/digest/format entry) for
        #: file-backed graphs on the request's axes; empty otherwise.
        self.datasets = datasets


class BenchmarkService:
    """Memoize-or-execute campaign server core (transport-agnostic)."""

    def __init__(
        self,
        archive_dir: str | Path | None = None,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        journal_dir: str | Path | None = None,
        max_pending_jobs: int = DEFAULT_MAX_PENDING_JOBS,
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
        resume: bool = False,
        min_free_bytes: int | None = None,
        min_available_memory_bytes: int | None = None,
        watchdog_interval: float = DEFAULT_WATCHDOG_INTERVAL,
    ) -> None:
        self.archive = RunArchive(archive_dir)
        # A corrupt cell index quarantines + rebuilds from the archive
        # instead of refusing to start: the index is a cache, the runs
        # are the source of truth.
        self.index, self.index_heal_report = open_self_healing_index(self.archive)
        if min_free_bytes is None:
            min_free_bytes = int(
                os.environ.get(MIN_FREE_BYTES_ENV, DEFAULT_MIN_FREE_BYTES)
            )
        if min_available_memory_bytes is None:
            min_available_memory_bytes = int(
                os.environ.get(MIN_AVAILABLE_MEMORY_ENV, 0)
            )
        self.min_free_bytes = int(min_free_bytes)
        self.min_available_memory_bytes = int(min_available_memory_bytes)
        self.journal_dir = (
            Path(journal_dir)
            if journal_dir is not None
            else self.archive.root / "journals"
        )
        self.jobs = max(1, int(jobs))
        self.cache = GraphCache(cache_dir) if cache_dir is not None else GraphCache()
        self._lock = threading.Lock()
        #: digest → {"line": bytes, "payload": dict, "run_id": str|None,
        #: "cell": tuple}; LRU over *hot* entries (the index is complete).
        self._results: "OrderedDict[str, dict]" = OrderedDict()
        self._result_cache_size = int(result_cache_size)
        self._inflight: dict[str, _Inflight] = {}
        self._queue: "Queue[_Job | None]" = Queue(maxsize=max(1, int(max_pending_jobs)))
        self._pool: WorkerPool | None = None
        self._job_seq = 0
        self._started_at = time.time()
        self._closed = False
        self._draining = False
        self._engine_job: _Job | None = None
        self._watchdog_interval = max(0.05, float(watchdog_interval))
        self.stats: dict[str, int] = {
            "submissions": 0,
            "cells_requested": 0,
            "cells_hit": 0,
            "cells_coalesced": 0,
            "cells_executed": 0,
            "jobs_executed": 0,
            "jobs_rejected": 0,
            "jobs_failed": 0,
            "cells_recovered": 0,
            "engine_restarts": 0,
            "submissions_degraded": 0,
            "cells_degraded_rejected": 0,
            "runs_quarantined": 0,
        }
        self.recovery_report: list[dict[str, object]] = []
        #: Runs refused at serve time (digest mismatch → quarantined).
        self.integrity_events: list[dict[str, object]] = []
        if resume:
            self.recovery_report = self._recover_journals()
        self._engine = self._spawn_engine()
        self._watchdog = threading.Thread(
            target=self._watchdog_loop, name="service-watchdog", daemon=True
        )
        self._watchdog.start()

    def _spawn_engine(self) -> threading.Thread:
        engine = threading.Thread(
            target=self._engine_loop, name="service-engine", daemon=True
        )
        engine.start()
        return engine

    # -- submission (handler threads) -----------------------------------

    def submit_events(self, request: CampaignRequest) -> Iterator[bytes]:
        """Process one submission; yields encoded NDJSON event lines.

        The generator is the whole request lifecycle: classification runs
        on first ``next()``, hits stream immediately, and the generator
        blocks between events while misses execute.
        """
        spec = request.spec()
        # Resolve dataset references before anything is classified or
        # enqueued: the files live on the *server's* filesystem, so an
        # unresolvable reference is a structured error event, not a
        # protocol rejection (and certainly not an engine crash).
        try:
            _, datasets = graph_identities(request.graphs)
        except ReproError as exc:
            yield encode_event(
                {
                    "event": "error",
                    "campaign": request.campaign_id,
                    "message": f"dataset resolution failed: {exc}",
                }
            )
            return
        hasher = identity_hasher(spec)
        cells = request.cell_keys()
        queue: SimpleQueue = SimpleQueue()
        hit_lines: list[bytes] = []
        owned: list[tuple[str, tuple[str, str, str, str]]] = []
        pending: set[str] = set()
        rejected: list[tuple[str, str, str, str]] = []
        # Admission control: when disk (or memory) is under its watermark
        # — or the server is draining for shutdown — new *misses* are
        # rejected before anything is claimed or enqueued, so a resource-
        # critical submission can never cause a partial write.  Hits and
        # coalesced subscriptions are read-only and still served.
        degraded_reasons = self.degraded_reasons()

        with self._lock:
            self.stats["submissions"] += 1
            self.stats["cells_requested"] += len(cells)
            if degraded_reasons:
                self.stats["submissions_degraded"] += 1
            for key in cells:
                digest = cell_digest(
                    None, normalize_cell_key(key, datasets), hasher=hasher
                )
                line = self._hit_line_locked(digest)
                if line is not None:
                    hit_lines.append(line)
                    self.stats["cells_hit"] += 1
                    continue
                entry = self._inflight.get(digest)
                if entry is not None:
                    self.stats["cells_coalesced"] += 1
                    if entry.line is not None:
                        # Already finished executing, not yet archived:
                        # replay the streamed event instead of waiting.
                        hit_lines.append(entry.line)
                    else:
                        entry.subscribers.append(queue)
                        pending.add(digest)
                    continue
                if degraded_reasons:
                    rejected.append(key)
                    self.stats["cells_degraded_rejected"] += 1
                    continue
                self._inflight[digest] = _Inflight()
                self._inflight[digest].subscribers.append(queue)
                owned.append((digest, key))
                pending.add(digest)

        job: _Job | None = None
        if owned:
            with self._lock:
                self._job_seq += 1
                seq = self._job_seq
            job = _Job(request, spec, hasher, owned, queue, seq, datasets)
            try:
                self._queue.put_nowait(job)
            except Full:
                with self._lock:
                    for digest, _ in owned:
                        self._inflight.pop(digest, None)
                    self.stats["jobs_rejected"] += 1
                yield encode_event(
                    {
                        "event": "error",
                        "campaign": request.campaign_id,
                        "message": (
                            "server at capacity: "
                            f"{self._queue.maxsize} campaigns already queued"
                        ),
                    }
                )
                return

        yield encode_event(
            {
                "event": "accepted",
                "campaign": request.campaign_id,
                "cells": len(cells),
                "hits": len(hit_lines),
                "pending": len(pending),
                **({"rejected": len(rejected)} if rejected else {}),
            }
        )
        for line in hit_lines:
            yield line

        fresh_run_id: str | None = None
        failure: str | None = None
        awaiting_finish = job is not None
        while pending or awaiting_finish:
            message = queue.get()
            kind = message[0]
            if kind == "cell":
                _, digest, line = message
                pending.discard(digest)
                yield line
            elif kind == "finish":
                awaiting_finish = False
                fresh_run_id = message[1]
            elif kind == "fatal":
                awaiting_finish = False
                failure = message[1]
                # The engine already resolved this job's owned cells with
                # error events; anything still pending belongs to other
                # jobs and will drain normally.
                pending -= {digest for digest, _ in (job.owned if job else [])}

        if failure is not None:
            yield encode_event(
                {
                    "event": "error",
                    "campaign": request.campaign_id,
                    "message": failure,
                }
            )
            return
        if rejected:
            # Terminal degraded rejection: every cached cell above was
            # still served; the listed misses were refused without any
            # write.  Structured, never a 5xx.
            yield encode_event(
                {
                    "event": "degraded",
                    "campaign": request.campaign_id,
                    "cells": len(cells),
                    "hits": len(hit_lines),
                    "rejected": len(rejected),
                    "rejected_cells": [list(key) for key in rejected],
                    "reasons": degraded_reasons,
                    "retry_after_seconds": DEGRADED_RETRY_AFTER_SECONDS,
                }
            )
            return
        yield encode_event(
            {
                "event": "done",
                "campaign": request.campaign_id,
                "cells": len(cells),
                "hits": len(hit_lines),
                "executed": len(owned),
                "fresh_run_id": fresh_run_id,
            }
        )

    def submit_collect(
        self, request: CampaignRequest
    ) -> list[dict[str, object]]:
        """Decoded event list for one submission (test/in-process use)."""
        return [json.loads(line) for line in self.submit_events(request)]

    # -- cache ----------------------------------------------------------

    def _hit_line_locked(self, digest: str) -> bytes | None:
        """Pre-encoded hit event for a digest, or None (lock held)."""
        entry = self._results.get(digest)
        if entry is None:
            run_id = self.index.run_id_for(digest)
            if run_id is None:
                return None
            self._warm_run_locked(run_id)
            entry = self._results.get(digest)
            if entry is None:
                return None
        self._results.move_to_end(digest)
        return entry["line"]

    def _warm_run_locked(self, run_id: str) -> None:
        """Load one archived run's successful cells into the hot cache.

        The run is integrity-verified before anything from it is served:
        a run whose payload no longer matches its manifest digests is
        quarantined on the spot and treated as a miss — corrupt bytes
        are never streamed to a client, they are re-measured.
        """
        try:
            record = self.archive.lookup(run_id)
            problems = verify_run(record.path)
            if problems:
                try:
                    quarantine_run(self.archive, run_id)
                except OSError:
                    pass  # still refuse to serve it, even unquarantined
                self.stats["runs_quarantined"] += 1
                self.integrity_events.append(
                    {"run_id": run_id, "problems": problems}
                )
                return
            results = record.load_results()
        except (ReproError, OSError, ValueError):
            return
        spec = record.manifest.get("spec")
        environment = record.manifest.get("environment")
        if not isinstance(spec, dict):
            return
        hasher = identity_hasher(
            spec, environment if isinstance(environment, dict) else None
        )
        datasets = record.manifest.get("datasets")
        datasets = datasets if isinstance(datasets, dict) else None
        for result in results:
            if not result.ok:
                continue
            digest = cell_digest(
                None, normalize_cell_key(result.cell_key, datasets), hasher=hasher
            )
            if digest not in self._results:
                self._cache_result_locked(
                    digest, result.cell_key, result.as_dict(), run_id
                )

    def _cache_result_locked(
        self,
        digest: str,
        cell_key: tuple[str, str, str, str],
        payload: dict[str, object],
        run_id: str | None,
    ) -> None:
        line = encode_event(
            {
                "event": "cell",
                "digest": digest,
                "cell": list(cell_key),
                "cached": True,
                "run_id": run_id,
                "result": payload,
            }
        )
        self._results[digest] = {
            "line": line,
            "payload": payload,
            "run_id": run_id,
            "cell": cell_key,
        }
        self._results.move_to_end(digest)
        while len(self._results) > self._result_cache_size:
            self._results.popitem(last=False)

    # -- execution engine (single thread) -------------------------------

    def _engine_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            with self._lock:
                self._engine_job = job
            try:
                self._execute(job)
                with self._lock:
                    self.stats["jobs_executed"] += 1
            except Exception as exc:  # noqa: BLE001 - engine must survive
                self._fail_job(job, exc)
            # Deliberately NOT a finally: a BaseException (SystemExit,
            # MemoryError escalation, interpreter teardown) kills this
            # thread with the job still marked in-flight, and the
            # watchdog uses that mark to resolve the orphaned job's
            # subscribers before restarting the engine.
            with self._lock:
                self._engine_job = None

    def _watchdog_loop(self) -> None:
        """Restart a crashed engine thread without dropping subscribers.

        A job-level failure is already contained by :meth:`_engine_loop`
        (the job resolves with error events and the engine survives).
        This watchdog covers the remaining case — the engine *thread*
        dying — by resolving whatever job it held (so coalesced waiters
        unblock instead of hanging forever) and spawning a fresh engine
        that continues with the queued jobs.
        """
        while not self._closed:
            time.sleep(self._watchdog_interval)
            if self._closed or self._engine.is_alive():
                continue
            with self._lock:
                if self._closed:
                    return
                orphan = self._engine_job
                self._engine_job = None
                self.stats["engine_restarts"] += 1
            if orphan is not None:
                self._fail_job(
                    orphan,
                    ServiceError("engine thread crashed mid-job; engine restarted"),
                )
            self._engine = self._spawn_engine()

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None or self._pool.closed:
            self._pool = WorkerPool(self.jobs)
        return self._pool

    def _execute(self, job: _Job) -> None:
        """Run one job's owned misses through the shared warm pool."""
        request = job.request
        owned_keys = {key for _, key in job.owned}
        # The executor runs a cross-product grid; derive the smallest
        # axes covering the owned cells (subset of the request axes) and
        # pre-fill every non-owned grid cell from the cache so nothing
        # already measured re-executes.
        graphs = [g for g in request.graphs if any(k[0] == g for k in owned_keys)]
        modes = [m for m in request.modes if any(k[1] == m for k in owned_keys)]
        kernels = [k for k in request.kernels if any(c[2] == k for c in owned_keys)]
        frameworks = [
            f for f in request.frameworks if any(k[3] == f for k in owned_keys)
        ]
        completed: dict[tuple[str, str, str, str], RunResult] = {}
        with self._lock:
            for graph in graphs:
                for mode in modes:
                    for kernel in kernels:
                        for framework in frameworks:
                            key = (graph, mode, kernel, framework)
                            if key in owned_keys:
                                continue
                            digest = cell_digest(
                                None,
                                normalize_cell_key(key, job.datasets),
                                hasher=job.hasher,
                            )
                            entry = self._results.get(digest)
                            if entry is not None:
                                completed[key] = RunResult.from_dict(
                                    entry["payload"]
                                )
                            # A grid-filler absent from the cache (e.g. a
                            # previously failed cell) simply re-executes.

        spec = job.spec
        journal_path = self.journal_dir / f"job-{request.campaign_id}-{job.seq}.jsonl"
        job_datasets = {
            ref: entry for ref, entry in job.datasets.items() if ref in graphs
        }
        journal = CheckpointJournal.create(
            journal_path,
            campaign_fingerprint(
                spec,
                graphs,
                kernels,
                modes,
                frameworks,
                datasets=job_datasets or None,
            ),
        )
        executed: list[tuple[str, tuple[str, str, str, str], RunResult]] = []

        def on_result(cell, result: RunResult) -> None:
            key = (cell.graph, cell.mode.value, cell.kernel, cell.framework)
            digest = cell_digest(
                None, normalize_cell_key(key, job.datasets), hasher=job.hasher
            )
            line = encode_event(
                {
                    "event": "cell",
                    "digest": digest,
                    "cell": list(key),
                    "cached": False,
                    "run_id": None,
                    "result": result.as_dict(),
                }
            )
            with self._lock:
                executed.append((digest, key, result))
                self.stats["cells_executed"] += 1
                entry = self._inflight.get(digest)
                if entry is not None:
                    entry.line = line
                    for subscriber in entry.subscribers:
                        subscriber.put(("cell", digest, line))

        pool = self._ensure_pool()
        try:
            run_suite_parallel(
                [get_framework(name) for name in frameworks],
                graphs,
                kernels=kernels,
                modes=[Mode(value) for value in modes],
                spec=spec,
                jobs=pool.jobs,
                telemetry=Telemetry(),
                cache=self.cache,
                journal=journal,
                completed=completed,
                pool=pool,
                on_result=on_result,
            )
        finally:
            journal.close()

        # Archive exactly the executed cells as one content-addressed run.
        ordered = sorted(
            executed,
            key=lambda item: (
                graphs.index(item[1][0]),
                modes.index(item[1][1]),
                kernels.index(item[1][2]),
                frameworks.index(item[1][3]),
            ),
        )
        results = ResultSet(
            [result for _, _, result in ordered],
            meta={
                "spec": spec.as_dict(),
                "environment": fingerprint(),
                "graphs": graphs,
                "kernels": kernels,
                "modes": modes,
                "frameworks": frameworks,
                "service": {"campaign": request.campaign_id, "job": job.seq},
                **({"datasets": job_datasets} if job_datasets else {}),
            },
        )
        record = self.archive.archive_run(
            results, spec=spec, source=f"service:{request.campaign_id}"
        )
        self.index.add_many(
            [
                (digest, record.run_id, key)
                for digest, key, result in executed
                if result.ok
            ]
        )
        with self._lock:
            for digest, key, result in executed:
                if result.ok:
                    self._cache_result_locked(
                        digest, key, result.as_dict(), record.run_id
                    )
                self._inflight.pop(digest, None)
        journal_path.unlink(missing_ok=True)
        job.queue.put(("finish", record.run_id))

    def _fail_job(self, job: _Job, exc: BaseException) -> None:
        """Resolve a crashed job: error events out, inflight marks cleared."""
        message = f"campaign execution failed: {type(exc).__name__}: {exc}"
        with self._lock:
            self.stats["jobs_failed"] += 1
            for digest, key in job.owned:
                entry = self._inflight.pop(digest, None)
                if entry is None or entry.line is not None:
                    continue
                line = encode_event(
                    {
                        "event": "cell",
                        "digest": digest,
                        "cell": list(key),
                        "cached": False,
                        "run_id": None,
                        "result": None,
                        "error": message,
                    }
                )
                for subscriber in entry.subscribers:
                    subscriber.put(("cell", digest, line))
        job.queue.put(("fatal", message))

    # -- recovery -------------------------------------------------------

    def _recover_journals(self) -> list[dict[str, object]]:
        """Archive + index completed cells from crashed jobs' journals.

        Each journal header carries the campaign fingerprint (topology-
        free spec identity + environment), which is exactly what a cell
        digest is made of — so recovered cells become ordinary cache
        hits: a client re-submitting the interrupted campaign gets every
        journaled cell back with a real run_id and zero re-execution.
        """
        reports: list[dict[str, object]] = []
        if not self.journal_dir.is_dir():
            return reports
        for path in sorted(self.journal_dir.glob("*.jsonl")):
            try:
                recorded, completed = read_journal(path)
            except (JournalError, OSError) as exc:
                reports.append({"journal": path.name, "error": str(exc)})
                continue
            spec = recorded.get("spec")
            environment = recorded.get("environment")
            datasets = recorded.get("datasets")
            datasets = datasets if isinstance(datasets, dict) else None
            if isinstance(spec, dict) and completed:
                hasher = identity_hasher(
                    spec, environment if isinstance(environment, dict) else None
                )
                results = ResultSet(
                    list(completed.values()),
                    meta={
                        "spec": spec,
                        "environment": environment,
                        "service": {"recovered_from": path.name},
                        **({"datasets": datasets} if datasets else {}),
                    },
                )
                try:
                    record = self.archive.archive_run(
                        results, spec=spec, source=f"service-recovery:{path.name}"
                    )
                    self.index.add_many(
                        [
                            (
                                cell_digest(
                                    None,
                                    normalize_cell_key(result.cell_key, datasets),
                                    hasher=hasher,
                                ),
                                record.run_id,
                                result.cell_key,
                            )
                            for result in completed.values()
                            if result.ok
                        ]
                    )
                except OSError as exc:
                    # Disk trouble mid-recovery (full disk, failing
                    # device): the journal stays on disk — its cells
                    # remain recoverable at the next startup — and the
                    # server boots anyway instead of crash-looping.
                    reports.append(
                        {
                            "journal": path.name,
                            "error": f"recovery write failed: {exc}",
                            "retained": True,
                        }
                    )
                    continue
                self.stats["cells_recovered"] += len(completed)
                reports.append(
                    {
                        "journal": path.name,
                        "recovered_cells": len(completed),
                        "run_id": record.run_id,
                    }
                )
            else:
                reports.append({"journal": path.name, "recovered_cells": 0})
            path.unlink(missing_ok=True)
        return reports

    # -- watermarks / degraded mode --------------------------------------

    def resource_watermarks(self) -> dict[str, object]:
        """Current disk/memory readings against the configured floors."""
        # The archive root is created lazily on first write; until then,
        # measure the nearest existing ancestor so a freshly started
        # server still sees disk pressure before it writes anything.
        probe = Path(self.archive.root).absolute()
        while not probe.exists() and probe.parent != probe:
            probe = probe.parent
        try:
            disk = shutil.disk_usage(probe)
            disk_free: int | None = disk.free
            disk_total: int | None = disk.total
        except OSError:
            disk_free = disk_total = None
        return {
            "disk_free_bytes": disk_free,
            "disk_total_bytes": disk_total,
            "min_free_bytes": self.min_free_bytes,
            "memory_available_bytes": available_memory_bytes(),
            "min_available_memory_bytes": self.min_available_memory_bytes,
        }

    def degraded_reasons(self) -> list[str]:
        """Why new misses are being refused right now (empty = healthy).

        Draining (graceful shutdown) and watermark breaches both put the
        service in hits-only read-only mode; the reasons are surfaced
        verbatim in ``degraded`` events and ``/health``.
        """
        reasons: list[str] = []
        if self._draining:
            reasons.append("draining: server is shutting down")
        marks = self.resource_watermarks()
        free = marks["disk_free_bytes"]
        if free is not None and free < self.min_free_bytes:
            reasons.append(
                f"disk critically low: {free} bytes free at "
                f"{self.archive.root} (floor {self.min_free_bytes})"
            )
        available = marks["memory_available_bytes"]
        if (
            self.min_available_memory_bytes
            and available is not None
            and available < self.min_available_memory_bytes
        ):
            reasons.append(
                f"memory critically low: {available} bytes available "
                f"(floor {self.min_available_memory_bytes})"
            )
        return reasons

    # -- introspection / lifecycle --------------------------------------

    def health(self) -> dict[str, object]:
        """Liveness + capacity payload for ``/health``.

        Everything an operator (or the soak harness) needs to judge the
        service at a glance: engine/pool liveness, queue depth against
        capacity, disk/memory watermarks, degraded state, index size,
        quarantine count, and the last scrub verdict.
        """
        with self._lock:
            engine_alive = self._engine.is_alive()
            restarts = self.stats["engine_restarts"]
            inflight = len(self._inflight)
            quarantined_serving = self.stats["runs_quarantined"]
        pool = self._pool
        reasons = self.degraded_reasons()
        last_scrub = last_scrub_report(self.archive.root)
        return {
            "ok": engine_alive and not reasons,
            "degraded": bool(reasons),
            "degraded_reasons": reasons,
            "draining": self._draining,
            "engine_alive": engine_alive,
            "engine_restarts": restarts,
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self._queue.maxsize,
            "inflight_cells": inflight,
            "pool_alive": pool is not None and not pool.closed,
            "pool_jobs": self.jobs,
            "watermarks": self.resource_watermarks(),
            "indexed_cells": len(self.index),
            "index_healed_at_startup": self.index_heal_report,
            "quarantine_count": quarantine_count(self.archive.root),
            "runs_quarantined_while_serving": quarantined_serving,
            "graph_cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "corrupt": self.cache.corrupt,
                "corrupt_events": list(self.cache.corrupt_events[-10:]),
            },
            "last_scrub_verdict": (
                last_scrub.get("verdict") if last_scrub else None
            ),
            "last_scrub": last_scrub,
        }

    def status(self) -> dict[str, object]:
        """Introspection payload: stats, hit rate, queue/cache depths."""
        with self._lock:
            stats = dict(self.stats)
            inflight = len(self._inflight)
            cached = len(self._results)
        requested = stats["cells_requested"]
        served = stats["cells_hit"] + stats["cells_coalesced"]
        reasons = self.degraded_reasons()
        last_scrub = last_scrub_report(self.archive.root)
        return {
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "archive": str(self.archive.root),
            "indexed_cells": len(self.index),
            "hot_cache_cells": cached,
            "inflight_cells": inflight,
            "queued_jobs": self._queue.qsize(),
            "queue_capacity": self._queue.maxsize,
            "hit_rate": round(served / requested, 6) if requested else None,
            "recovery": self.recovery_report,
            "degraded": bool(reasons),
            "degraded_reasons": reasons,
            "draining": self._draining,
            "quarantine_count": quarantine_count(self.archive.root),
            "last_scrub_verdict": (
                last_scrub.get("verdict") if last_scrub else None
            ),
            **stats,
        }

    def drain(self, timeout: float = 300.0) -> None:
        """Graceful drain: refuse new misses, finish queued work, stop.

        New submissions still get their hits (and a structured
        ``degraded`` rejection for misses); every job already queued or
        in flight runs to completion — journaled, archived, indexed,
        fsynced — before the engine stops.  Idempotent, like shutdown.
        """
        self._draining = True
        self.shutdown(timeout=timeout)

    def shutdown(self, timeout: float = 30.0) -> None:
        """Stop the engine and release the pool (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._engine.join(timeout=timeout)
        if self._pool is not None and not self._pool.closed:
            self._pool.shutdown()
        self.index.close()


# -- HTTP front end -----------------------------------------------------


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes: POST /submit (NDJSON stream), GET /status, GET /healthz,
    POST /shutdown.  HTTP/1.1 with keep-alive; /submit streams via
    chunked transfer-encoding so clients see cells as they land."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service"
    # Nagle + delayed ACK turns each small chunked write into a 40ms
    # stall; a streaming event protocol must flush segments immediately.
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the service is chatty enough through its event streams

    @property
    def service(self) -> BenchmarkService:
        return self.server.service  # type: ignore[attr-defined]

    def _send_json(self, status: int, payload: dict[str, object]) -> None:
        body = json.dumps(payload, default=str).encode() + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._send_json(200, {"ok": True})
        elif self.path == "/health":
            payload = self.service.health()
            self._send_json(200 if payload["ok"] else 503, payload)
        elif self.path == "/status":
            self._send_json(200, self.service.status())
        else:
            self._send_json(404, {"error": f"unknown path {self.path}"})

    def do_POST(self) -> None:
        if self.path == "/shutdown":
            self._send_json(200, {"ok": True, "shutting_down": True})
            threading.Thread(target=self.server.shutdown, daemon=True).start()
            return
        if self.path != "/submit":
            self._send_json(404, {"error": f"unknown path {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length) if length else b""
            request = CampaignRequest.from_dict(json.loads(raw or b"{}"))
        except (ServiceError, json.JSONDecodeError, ValueError) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        try:
            for line in self.service.submit_events(request):
                self.wfile.write(b"%X\r\n%s\r\n" % (len(line), line))
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; the engine finishes anyway


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`BenchmarkService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: BenchmarkService) -> None:
        super().__init__(address, _ServiceHandler)
        self.service = service


def serve_forever(
    service: BenchmarkService,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: Callable[[str, int], None] | None = None,
    drain_on_sigterm: bool = True,
) -> None:
    """Serve until /shutdown, SIGTERM, or KeyboardInterrupt; blocks.

    ``port=0`` binds an ephemeral port; ``ready`` receives the actual
    (host, port) before serving starts (the CLI prints it).

    SIGTERM triggers a *graceful drain*: in-flight and queued jobs run
    to completion (journaled, archived, fsynced), new misses get
    structured ``degraded`` rejections meanwhile, and the process exits
    0 — the contract supervisors (systemd, k8s) expect from a well-
    behaved service.  The drain runs on a helper thread because the
    signal arrives on the thread blocked in ``serve_forever()``.
    """
    server = ServiceHTTPServer((host, port), service)

    def _drain_and_stop() -> None:
        service.drain()
        server.shutdown()

    if drain_on_sigterm:
        try:
            signal.signal(
                signal.SIGTERM,
                lambda signum, frame: threading.Thread(
                    target=_drain_and_stop, name="sigterm-drain", daemon=True
                ).start(),
            )
        except ValueError:
            pass  # not the main thread (embedded use); no signal hook
    try:
        if ready is not None:
            ready(*server.server_address[:2])
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.shutdown()
