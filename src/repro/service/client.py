"""Streaming client for the benchmark service.

A thin wrapper over :mod:`http.client` kept deliberately dependency-free
(the container has no requests/httpx).  One :class:`ServiceClient` holds
one persistent HTTP/1.1 connection — the benchmark drives dozens of
these concurrently to model a fleet of submitters — and decodes the
server's chunked NDJSON stream incrementally, so callers see each cell
event the moment the server flushes it.

Submissions are *idempotent* on the server (every cell is memoized, and
identical in-flight cells coalesce), which makes client-side retry safe:
on a connection reset or a mid-stream disconnect (a crashed or restarted
server), :meth:`ServiceClient.submit` reopens the connection and
resubmits after a jittered exponential backoff.  Cells already streamed
are deduplicated by digest across attempts, so the caller sees every
cell exactly once no matter how many times the transport failed under
it — a fleet worker survives a server SIGKILL instead of failing the
whole campaign.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from typing import Iterator

from ..errors import ServiceError
from .protocol import CampaignRequest

__all__ = ["ServiceClient"]

#: Terminal event kinds: a stream that ended without one was torn.
_TERMINAL_EVENTS = ("done", "error", "degraded")


class ServiceClient:
    """Persistent-connection client for one service endpoint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8585,
        timeout: float = 300.0,
        max_attempts: int = 4,
        backoff: float = 0.25,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Submission attempts before giving up (1 = no retry).
        self.max_attempts = max(1, int(max_attempts))
        #: Base delay of the jittered exponential backoff between attempts.
        self.backoff = float(backoff)
        self._conn: http.client.HTTPConnection | None = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._conn.connect()
            # Mirror the server: without TCP_NODELAY, Nagle holds each
            # small request/event segment for the delayed-ACK timer.
            self._conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._conn

    def _request(self, method: str, path: str, body: bytes | None = None):
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            try:
                conn = self._connection()
                conn.request(method, path, body=body, headers=headers)
                return conn.getresponse()
            except (ConnectionError, http.client.HTTPException, OSError) as exc:
                # A dropped keep-alive connection gets one reconnect; a
                # genuinely unreachable server surfaces as ServiceError.
                self.close()
                if attempt:
                    raise ServiceError(
                        f"service at {self.host}:{self.port} unreachable: {exc}"
                    ) from exc

    def _json(self, method: str, path: str) -> dict[str, object]:
        resp = self._request(method, path)
        payload = resp.read()
        if resp.status != 200:
            raise ServiceError(
                f"{method} {path} failed ({resp.status}): {payload.decode(errors='replace').strip()}"
            )
        return json.loads(payload)

    # -- API ------------------------------------------------------------

    def submit(self, request: CampaignRequest | dict) -> Iterator[dict]:
        """Submit a campaign; yields decoded events as the server streams.

        ``http.client`` undoes the chunked transfer-encoding, so each
        ``readline()`` returns exactly one NDJSON event once the server
        flushes it.

        Transport failures — connection refused/reset, or a stream that
        ends before a terminal event (the server died mid-submission) —
        are retried up to ``max_attempts`` times with jittered
        exponential backoff, reopening the persistent connection each
        time.  The retry is safe because submissions are idempotent:
        completed cells come back as cache hits, in-flight ones
        coalesce.  ``cell`` events are deduplicated by digest across
        attempts and a repeated ``accepted`` is suppressed, so the
        caller's event sequence looks like one clean submission.
        """
        if isinstance(request, CampaignRequest):
            request = request.as_dict()
        body = json.dumps(request).encode()
        seen_digests: set[str] = set()
        accepted_sent = False
        last_error: Exception | None = None
        for attempt in range(self.max_attempts):
            if attempt:
                delay = self.backoff * (2 ** (attempt - 1))
                time.sleep(delay * (0.5 + random.random()))
            try:
                resp = self._request("POST", "/submit", body)
            except ServiceError as exc:
                last_error = exc
                continue
            if resp.status != 200:
                detail = resp.read().decode(errors="replace").strip()
                raise ServiceError(
                    f"submission rejected ({resp.status}): {detail}"
                )
            try:
                saw_terminal = False
                while not saw_terminal:
                    line = resp.readline()
                    if not line:
                        break
                    line = line.strip()
                    if not line:
                        continue
                    event = json.loads(line)
                    kind = event.get("event")
                    if kind == "accepted":
                        if accepted_sent:
                            continue
                        accepted_sent = True
                    elif kind == "cell":
                        digest = event.get("digest")
                        if digest is not None:
                            if digest in seen_digests:
                                continue  # replayed by a retried attempt
                            seen_digests.add(digest)
                    elif kind in _TERMINAL_EVENTS:
                        saw_terminal = True
                    yield event
                if saw_terminal:
                    return
                last_error = ServiceError(
                    "event stream ended without a terminal event "
                    "(server died mid-submission)"
                )
            except (
                ConnectionError,
                http.client.HTTPException,
                OSError,
                ValueError,
            ) as exc:
                # Reset mid-stream, or a line torn by a dying server.
                last_error = exc
            # The connection is in an unknown state after a torn stream;
            # drop it so the next attempt starts clean.
            self.close()
        raise ServiceError(
            f"submission to {self.host}:{self.port} failed after "
            f"{self.max_attempts} attempts: {last_error}"
        ) from last_error

    def submit_and_collect(self, request: CampaignRequest | dict) -> list[dict]:
        """Submit and block until the terminal event; returns all events."""
        return list(self.submit(request))

    def status(self) -> dict[str, object]:
        """The server's /status payload (stats, hit rate, recovery)."""
        return self._json("GET", "/status")

    def healthz(self) -> dict[str, object]:
        """Liveness probe; raises :class:`ServiceError` when down."""
        return self._json("GET", "/healthz")

    def health(self) -> dict[str, object]:
        """The server's full /health payload (watermarks, degraded state).

        A degraded server answers 503 with the same JSON body — that is
        still a *response*, so it is returned, not raised; check the
        ``ok`` / ``degraded`` fields.
        """
        resp = self._request("GET", "/health")
        payload = resp.read()
        if resp.status not in (200, 503):
            raise ServiceError(
                f"GET /health failed ({resp.status}): "
                f"{payload.decode(errors='replace').strip()}"
            )
        return json.loads(payload)

    def shutdown(self) -> dict[str, object]:
        """Ask the server to stop serving and release its pool."""
        result = self._json("POST", "/shutdown")
        self.close()
        return result

    def close(self) -> None:
        """Drop the persistent connection (reopened on next use)."""
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
