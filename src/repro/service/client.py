"""Streaming client for the benchmark service.

A thin wrapper over :mod:`http.client` kept deliberately dependency-free
(the container has no requests/httpx).  One :class:`ServiceClient` holds
one persistent HTTP/1.1 connection — the benchmark drives dozens of
these concurrently to model a fleet of submitters — and decodes the
server's chunked NDJSON stream incrementally, so callers see each cell
event the moment the server flushes it.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Iterator

from ..errors import ServiceError
from .protocol import CampaignRequest

__all__ = ["ServiceClient"]


class ServiceClient:
    """Persistent-connection client for one service endpoint."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8585, timeout: float = 300.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._conn.connect()
            # Mirror the server: without TCP_NODELAY, Nagle holds each
            # small request/event segment for the delayed-ACK timer.
            self._conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._conn

    def _request(self, method: str, path: str, body: bytes | None = None):
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            try:
                conn = self._connection()
                conn.request(method, path, body=body, headers=headers)
                return conn.getresponse()
            except (ConnectionError, http.client.HTTPException, OSError) as exc:
                # A dropped keep-alive connection gets one reconnect; a
                # genuinely unreachable server surfaces as ServiceError.
                self.close()
                if attempt:
                    raise ServiceError(
                        f"service at {self.host}:{self.port} unreachable: {exc}"
                    ) from exc

    def _json(self, method: str, path: str) -> dict[str, object]:
        resp = self._request(method, path)
        payload = resp.read()
        if resp.status != 200:
            raise ServiceError(
                f"{method} {path} failed ({resp.status}): {payload.decode(errors='replace').strip()}"
            )
        return json.loads(payload)

    # -- API ------------------------------------------------------------

    def submit(self, request: CampaignRequest | dict) -> Iterator[dict]:
        """Submit a campaign; yields decoded events as the server streams.

        ``http.client`` undoes the chunked transfer-encoding, so each
        ``readline()`` returns exactly one NDJSON event once the server
        flushes it.
        """
        if isinstance(request, CampaignRequest):
            request = request.as_dict()
        body = json.dumps(request).encode()
        resp = self._request("POST", "/submit", body)
        if resp.status != 200:
            detail = resp.read().decode(errors="replace").strip()
            raise ServiceError(f"submission rejected ({resp.status}): {detail}")
        while True:
            line = resp.readline()
            if not line:
                return
            line = line.strip()
            if line:
                yield json.loads(line)

    def submit_and_collect(self, request: CampaignRequest | dict) -> list[dict]:
        """Submit and block until the terminal event; returns all events."""
        return list(self.submit(request))

    def status(self) -> dict[str, object]:
        """The server's /status payload (stats, hit rate, recovery)."""
        return self._json("GET", "/status")

    def healthz(self) -> dict[str, object]:
        """Liveness probe; raises :class:`ServiceError` when down."""
        return self._json("GET", "/healthz")

    def shutdown(self) -> dict[str, object]:
        """Ask the server to stop serving and release its pool."""
        result = self._json("POST", "/shutdown")
        self.close()
        return result

    def close(self) -> None:
        """Drop the persistent connection (reopened on next use)."""
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
