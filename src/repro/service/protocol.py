"""Wire protocol of the benchmark service.

A submission is a *campaign request*: the measurement axes (graphs,
kernels, frameworks, modes) plus the spec knobs that change what a
measurement means (scale, seed, trials, timeout).  Execution topology is
deliberately absent — how the server parallelizes is its business, and
keeping topology out of the request keeps the cell digests stable across
server configurations (see :mod:`repro.store.cellindex`).

The response is a stream of newline-delimited JSON events:

``accepted``
    First event: the campaign id, total cell count, and the hit/miss
    split the dedup pass computed.
``cell``
    One per cell, as results land: the canonical ``cell`` key, the
    ``result`` payload (``RunResult.as_dict`` form), ``cached`` (True =
    served from the archive without executing anything), and ``run_id``
    (the archived run holding the cell; ``null`` for a freshly executed
    cell, whose run id is only knowable once the whole job is archived —
    the terminal ``done`` event carries it).
``done``
    Terminal event: totals, and ``fresh_run_id`` if this submission
    caused an execution that was archived.
``degraded``
    Terminal event when the server is in hits-only read-only mode
    (disk/memory below its watermarks, or draining for shutdown): every
    cached cell was still served, but the listed misses were *rejected*
    — nothing was enqueued or written.  Carries the watermark
    ``reasons`` and a ``retry_after_seconds`` hint; clients should
    resubmit later, and will then hit for everything already measured.
``error``
    Terminal event on rejection (capacity, engine failure, or a dataset
    reference that does not resolve on the server's filesystem).

The graphs axis accepts generator names (``road``, ``kron``, ...) and
dataset references (``file:/path/on/server.mtx``, ``dataset:NAME`` — see
:mod:`repro.graphs.datasets`).  References are resolved server-side: the
cell digests for file-backed cells are keyed on the file's *content
digest*, so two clients referencing byte-identical files share cells.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..core.spec import DEFAULT_TRIALS, BenchmarkSpec
from ..errors import BenchmarkConfigError, ServiceError
from ..frameworks.base import KERNELS
from ..frameworks.registry import EXTENDED_FRAMEWORK_NAMES
from ..generators import GRAPH_NAMES
from ..store.archive import canonical_json

__all__ = ["EVENT_KINDS", "CampaignRequest", "encode_event"]

EVENT_KINDS = ("accepted", "cell", "done", "degraded", "error")

MODE_VALUES = ("baseline", "optimized")

#: Request fields accepted on the wire (anything else is a protocol error).
REQUEST_FIELDS = (
    "graphs",
    "kernels",
    "frameworks",
    "modes",
    "scale",
    "seed",
    "trials",
    "trial_timeout",
)


def _validate_axis(
    name: str, values: tuple[str, ...], allowed: tuple[str, ...]
) -> None:
    if not values:
        raise ServiceError(f"campaign request has no {name}")
    unknown = [value for value in values if value not in allowed]
    if unknown:
        raise ServiceError(
            f"unknown {name} {unknown!r} (allowed: {list(allowed)})"
        )
    if len(set(values)) != len(values):
        raise ServiceError(f"duplicate {name} in {list(values)}")


def _validate_graphs(values: tuple[str, ...]) -> None:
    """Graphs axis: generator names plus dataset references.

    References (``file:/path`` / ``dataset:NAME``) are validated
    *syntactically* here — whether the path resolves is the server's
    business at submission time, because the file lives on the server's
    filesystem, not the client's.  An unresolvable reference becomes a
    structured ``error`` event, not a protocol error.
    """
    from ..graphs.datasets import is_dataset_ref

    if not values:
        raise ServiceError("campaign request has no graphs")
    unknown = [
        value
        for value in values
        if value not in GRAPH_NAMES and not is_dataset_ref(value)
    ]
    if unknown:
        raise ServiceError(
            f"unknown graphs {unknown!r} (allowed: {list(GRAPH_NAMES)} "
            "or file:/dataset: references)"
        )
    if len(set(values)) != len(values):
        raise ServiceError(f"duplicate graphs in {list(values)}")


@dataclass(frozen=True)
class CampaignRequest:
    """One validated campaign submission.

    Axis order is preserved as given (it defines the canonical cell
    order of the response), but the *campaign id* is order-sensitive
    too: clients wanting maximal coalescing should submit axes in a
    fixed order.  Cell digests are order-insensitive by construction —
    two requests overlapping in cells share those cells' cache entries
    regardless of axis order.
    """

    graphs: tuple[str, ...]
    kernels: tuple[str, ...]
    frameworks: tuple[str, ...]
    modes: tuple[str, ...] = MODE_VALUES
    scale: int = 10
    seed: int = 0
    trials: dict[str, int] = field(default_factory=dict)
    trial_timeout: float | None = None

    def __post_init__(self) -> None:
        _validate_graphs(self.graphs)
        _validate_axis("kernels", self.kernels, KERNELS)
        _validate_axis("frameworks", self.frameworks, EXTENDED_FRAMEWORK_NAMES)
        _validate_axis("modes", self.modes, MODE_VALUES)
        if not 4 <= int(self.scale) <= 26:
            raise ServiceError(
                f"scale {self.scale} out of range [4, 26] for a service run"
            )
        try:
            self.spec()
        except BenchmarkConfigError as exc:
            raise ServiceError(f"invalid campaign spec: {exc}") from exc

    # -- construction ---------------------------------------------------

    @classmethod
    def from_dict(cls, payload: object) -> "CampaignRequest":
        """Parse a wire payload; raises :class:`ServiceError` on junk."""
        if not isinstance(payload, dict):
            raise ServiceError("campaign request must be a JSON object")
        unknown = set(payload) - set(REQUEST_FIELDS)
        if unknown:
            raise ServiceError(
                f"unknown request fields {sorted(unknown)} "
                f"(allowed: {list(REQUEST_FIELDS)})"
            )

        def axis(name: str, default: tuple[str, ...] | None = None):
            raw = payload.get(name, default)
            if raw is None:
                raise ServiceError(f"campaign request is missing {name!r}")
            if isinstance(raw, str):
                raw = [part for part in raw.split(",") if part]
            if not isinstance(raw, (list, tuple)):
                raise ServiceError(f"{name} must be a list of names")
            return tuple(str(value) for value in raw)

        trials = payload.get("trials") or {}
        if not isinstance(trials, dict):
            raise ServiceError("trials must be an object of kernel -> count")
        timeout = payload.get("trial_timeout")
        try:
            return cls(
                graphs=axis("graphs"),
                kernels=axis("kernels"),
                frameworks=axis("frameworks"),
                modes=axis("modes", MODE_VALUES),
                scale=int(payload.get("scale", 10)),
                seed=int(payload.get("seed", 0)),
                trials={str(k): int(v) for k, v in trials.items()},
                trial_timeout=None if timeout is None else float(timeout),
            )
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"malformed campaign request: {exc}") from exc

    def as_dict(self) -> dict[str, object]:
        """Wire form: the exact payload ``from_dict`` round-trips."""
        return {
            "graphs": list(self.graphs),
            "kernels": list(self.kernels),
            "frameworks": list(self.frameworks),
            "modes": list(self.modes),
            "scale": self.scale,
            "seed": self.seed,
            "trials": dict(self.trials),
            "trial_timeout": self.trial_timeout,
        }

    # -- derived --------------------------------------------------------

    def spec(self) -> BenchmarkSpec:
        """The :class:`BenchmarkSpec` this request measures under.

        Topology fields keep their defaults — the server overrides them
        with its own execution configuration, and they are outside the
        cell digest anyway.
        """
        trials = dict(DEFAULT_TRIALS)
        trials.update(self.trials)
        return BenchmarkSpec(
            scale=int(self.scale),
            seed=int(self.seed),
            trials=trials,
            trial_timeout=self.trial_timeout,
        )

    def cell_keys(self) -> list[tuple[str, str, str, str]]:
        """Every cell of the campaign in canonical order.

        Matches the executor's enumeration exactly: graphs outermost,
        then modes, kernels, frameworks (see
        ``repro.core.executor._enumerate_cells``), so the event stream
        and an equivalent CLI run list cells identically.
        """
        return [
            (graph, mode, kernel, framework)
            for graph in self.graphs
            for mode in self.modes
            for kernel in self.kernels
            for framework in self.frameworks
        ]

    @property
    def campaign_id(self) -> str:
        """Content address of the request itself (coalescing key prefix)."""
        return hashlib.sha256(
            canonical_json(self.as_dict()).encode()
        ).hexdigest()[:12]


def encode_event(event: dict[str, object]) -> bytes:
    """One NDJSON line: compact separators, trailing newline."""
    return json.dumps(event, separators=(",", ":"), default=str).encode() + b"\n"
