"""K-BC — Section V-E: Brandes variants.

The paper's BC story: GAP's saved-successor bitmap beats re-filtering
backward passes (Galois, NWGraph); SuiteSparse's 4-root batched dense
products are its strongest kernel; GraphIt's bitvector frontier pays off on
dense frontiers and hurts on Road.
"""

import pytest

from repro.frameworks import FRAMEWORK_NAMES, RunContext, get
from repro.la import use_substrate

from .conftest import bc_roots


@pytest.mark.parametrize("graph_name", ["road", "kron"])
@pytest.mark.parametrize("fw_name", FRAMEWORK_NAMES)
def test_bc(benchmark, kernel_cases, fw_name, graph_name):
    case = kernel_cases[graph_name]
    framework = get(fw_name)
    roots = bc_roots(case)
    ctx = RunContext(graph_name=graph_name)
    benchmark.group = f"bc:{graph_name}"
    benchmark.pedantic(
        lambda: framework.betweenness(case.graph, roots, ctx),
        rounds=5,
        warmup_rounds=1,
    )


@pytest.mark.parametrize("engine", ["legacy", "substrate"])
def test_bc_substrate_ab(benchmark, kernel_cases, engine):
    """A/B the LA substrate against the pre-port engine on the same kernel."""
    case = kernel_cases["kron"]
    framework = get("gap")
    roots = bc_roots(case)
    ctx = RunContext(graph_name="kron")
    benchmark.group = "bc:substrate-ab"
    def run():
        with use_substrate(engine == "substrate"):
            framework.betweenness(case.graph, roots, ctx)
    benchmark.pedantic(run, rounds=5, warmup_rounds=1)
