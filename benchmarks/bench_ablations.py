"""A1 — ablations for the design choices the paper's discussion singles out.

Each group toggles exactly one mechanism so its contribution is measurable:

* bucket fusion on/off for SSSP on Road (the GraphIt/CGO'20 optimization
  the GAP reference adopted);
* direction optimization vs push-only BFS on the power-law graph;
* Jacobi vs Gauss-Seidel PageRank;
* Afforest's sample-and-skip vs label propagation vs full-sweep SV for CC;
* TC with and without the degree relabel on the skewed graph;
* Galois bulk-synchronous vs asynchronous scheduling on Road.
"""

import pytest

from repro.galois.bfs import async_bfs, sync_bfs
from repro.galois.pagerank import gauss_seidel_pagerank
from repro.gapbs.pagerank import jacobi_pagerank
from repro.gapbs.sssp import delta_stepping
from repro.gapbs.tc import triangle_count as gap_tc
from repro.frameworks import get

from .conftest import delta_for, source_for


class TestBucketFusion:
    @pytest.mark.parametrize("fusion", [True, False], ids=["fused", "unfused"])
    def test_sssp_road(self, benchmark, kernel_cases, fusion):
        case = kernel_cases["road"]
        source = source_for(case)
        benchmark.group = "ablation:bucket-fusion:road"
        benchmark.pedantic(
            lambda: delta_stepping(
                case.weighted, source, delta=delta_for("road"), bucket_fusion=fusion
            ),
            rounds=5,
            warmup_rounds=1,
        )


class TestDirectionOptimization:
    @pytest.mark.parametrize("direction", ["hybrid", "push-only"])
    def test_bfs_kron(self, benchmark, kernel_cases, direction):
        from repro.graphit import graphit_bfs
        from repro.graphit.schedules import baseline_schedule
        from repro.graphitc import Direction

        case = kernel_cases["kron"]
        source = source_for(case)
        schedule = baseline_schedule("bfs")
        if direction == "push-only":
            schedule = schedule.with_(direction=Direction.SPARSE_PUSH)
        benchmark.group = "ablation:direction-opt:kron"
        benchmark.pedantic(
            lambda: graphit_bfs(case.graph, source, schedule), rounds=5, warmup_rounds=1
        )


class TestPageRankDiscipline:
    @pytest.mark.parametrize("method", ["jacobi", "gauss-seidel"])
    def test_pr_kron(self, benchmark, kernel_cases, method):
        case = kernel_cases["kron"]
        run = (
            (lambda: jacobi_pagerank(case.graph))
            if method == "jacobi"
            else (lambda: gauss_seidel_pagerank(case.graph))
        )
        benchmark.group = "ablation:pr-discipline:kron"
        benchmark.pedantic(run, rounds=5, warmup_rounds=1)


class TestCCAlgorithms:
    @pytest.mark.parametrize("algorithm", ["afforest", "label-prop", "shiloach-vishkin", "fastsv"])
    def test_cc_road(self, benchmark, kernel_cases, algorithm):
        case = kernel_cases["road"]
        framework = {
            "afforest": "gap",
            "label-prop": "graphit",
            "shiloach-vishkin": "gkc",
            "fastsv": "suitesparse",
        }[algorithm]
        run = get(framework).connected_components
        benchmark.group = "ablation:cc-algorithm:road"
        benchmark.pedantic(lambda: run(case.graph), rounds=3, warmup_rounds=1)


class TestRelabeling:
    @pytest.mark.parametrize("relabel", [True, False], ids=["relabel", "no-relabel"])
    def test_tc_kron(self, benchmark, kernel_cases, relabel):
        case = kernel_cases["kron"]
        benchmark.group = "ablation:tc-relabel:kron"
        benchmark.pedantic(
            lambda: gap_tc(case.undirected, force_relabel=relabel),
            rounds=3,
            warmup_rounds=1,
        )


class TestScheduling:
    @pytest.mark.parametrize("schedule", ["sync", "async"])
    def test_bfs_road(self, benchmark, kernel_cases, schedule):
        case = kernel_cases["road"]
        source = source_for(case)
        run = sync_bfs if schedule == "sync" else async_bfs
        benchmark.group = "ablation:scheduling:road"
        benchmark.pedantic(lambda: run(case.graph, source), rounds=5, warmup_rounds=1)
