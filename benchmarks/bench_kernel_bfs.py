"""K-BFS — Section V-A: BFS across frameworks on the road/kron contrast.

The paper's BFS story: direction optimization everywhere, Galois' async
variant on high-diameter Road, per-round overheads punishing the
abstraction-heavy frameworks on Road's hundreds of tiny frontiers.
"""

import pytest

from repro.frameworks import FRAMEWORK_NAMES, Mode, RunContext, get
from repro.la import use_substrate

from .conftest import source_for


@pytest.mark.parametrize("graph_name", ["road", "kron"])
@pytest.mark.parametrize("fw_name", FRAMEWORK_NAMES)
def test_bfs(benchmark, kernel_cases, fw_name, graph_name):
    case = kernel_cases[graph_name]
    framework = get(fw_name)
    source = source_for(case)
    ctx = RunContext(graph_name=graph_name)
    benchmark.group = f"bfs:{graph_name}"
    benchmark.pedantic(lambda: framework.bfs(case.graph, source, ctx), rounds=5, warmup_rounds=1)


@pytest.mark.parametrize("fw_name", ["galois"])
def test_bfs_async_road_optimized(benchmark, kernel_cases, fw_name):
    """Galois' Optimized Road BFS keeps the asynchronous schedule."""
    case = kernel_cases["road"]
    framework = get(fw_name)
    source = source_for(case)
    ctx = RunContext(mode=Mode.OPTIMIZED, graph_name="road")
    benchmark.group = "bfs:road"
    benchmark.pedantic(lambda: framework.bfs(case.graph, source, ctx), rounds=5, warmup_rounds=1)


@pytest.mark.parametrize("engine", ["legacy", "substrate"])
def test_bfs_substrate_ab(benchmark, kernel_cases, engine):
    """A/B the LA substrate against the pre-port engine on the same kernel."""
    case = kernel_cases["kron"]
    framework = get("gap")
    source = source_for(case)
    ctx = RunContext(graph_name="kron")
    benchmark.group = "bfs:substrate-ab"
    def run():
        with use_substrate(engine == "substrate"):
            framework.bfs(case.graph, source, ctx)
    benchmark.pedantic(run, rounds=5, warmup_rounds=1)
