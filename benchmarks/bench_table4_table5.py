"""T4/T5 — Tables IV & V: every (framework, kernel, graph, mode) cell.

One pytest-benchmark entry per cell of the paper's 30-test matrix, for all
six frameworks under both rule sets — the data behind Table IV (fastest
time + winner) and Table V (speedup over the GAP reference).  The
pytest-benchmark comparison output *is* the table data; the pretty
paper-formatted rendering (with winner colors replaced by winner names and
percentages) is produced by ``examples/report_tables.py``.

Untimed per GAP rules and the paper's methodology: graph building,
weighting, symmetrization (handled by the session fixture) and any
framework-specific Optimized-mode preparation (the ``prepare`` hook, e.g.
Galois' untimed TC relabel).
"""

import pytest

from repro.frameworks import FRAMEWORK_NAMES, KERNELS, Mode, RunContext, get

from .conftest import bc_roots, delta_for, source_for


def _make_runner(framework, kernel, case, ctx):
    """Closure running one timed kernel invocation, inputs precomputed."""
    if kernel == "bfs":
        source = source_for(case)
        graph = framework.prepare(kernel, case.graph, ctx)
        return lambda: framework.bfs(graph, source, ctx)
    if kernel == "sssp":
        source = source_for(case)
        graph = framework.prepare(kernel, case.weighted, ctx)
        return lambda: framework.sssp(graph, source, ctx)
    if kernel == "cc":
        graph = framework.prepare(kernel, case.graph, ctx)
        return lambda: framework.connected_components(graph, ctx)
    if kernel == "pr":
        graph = framework.prepare(kernel, case.graph, ctx)
        return lambda: framework.pagerank(graph, ctx)
    if kernel == "bc":
        roots = bc_roots(case)
        graph = framework.prepare(kernel, case.graph, ctx)
        return lambda: framework.betweenness(graph, roots, ctx)
    if kernel == "tc":
        graph = framework.prepare(kernel, case.undirected, ctx)
        return lambda: framework.triangle_count(graph, ctx)
    raise ValueError(kernel)


@pytest.mark.parametrize("mode", [Mode.BASELINE, Mode.OPTIMIZED], ids=lambda m: m.value)
@pytest.mark.parametrize("fw_name", FRAMEWORK_NAMES)
@pytest.mark.parametrize("graph_name", ["road", "twitter", "web", "kron", "urand"])
@pytest.mark.parametrize("kernel", KERNELS)
def test_cell(benchmark, cases, kernel, graph_name, fw_name, mode):
    case = cases[graph_name]
    ctx = RunContext(mode=mode, graph_name=graph_name, delta=delta_for(graph_name))
    runner = _make_runner(get(fw_name), kernel, case, ctx)
    benchmark.group = f"{mode.value}:{kernel}:{graph_name}"
    benchmark.pedantic(runner, rounds=3, warmup_rounds=1)
