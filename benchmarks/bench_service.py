"""Service bench: memoization hit rate and cached-read latency under load.

The benchmark server's value proposition is that a campaign cell is
executed once, ever, and every later submission streams it from the
archive at interactive latency.  This bench is the proof and the gate:

* **seed** — a set of distinct small campaigns is submitted once; every
  cell is a miss and executes through the warm pool.
* **correctness** — each campaign is re-submitted and must come back
  100% cached, with zero cells executed and *byte-identical* result
  payloads (canonical JSON comparison against the seed pass).
* **load** — a fleet of closed-loop clients (persistent HTTP
  connections, like a CI farm hammering one memo server) re-submits the
  seeded campaigns continuously; every submission is end-to-end timed
  (request written → terminal ``done`` event read).  The gate checks the
  overall hit rate and the p95 cached-read latency.

Defaults: 32 concurrent clients, >= 1000 total submissions, gate at
>= 90% hit rate and p95 < 50 ms.  (The fleet size is tuned for CI-class
single-CPU boxes, where clients and server share one core *and* one
GIL; closed-loop latency there is queueing delay — roughly
clients/throughput — so doubling the fleet doubles p50 without changing
what the server can do.)  Run directly for a JSON summary (also
written to ``BENCH_service.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py \
        --fail-below-hitrate 0.9 --fail-p95-ms 50

or under pytest for a reduced smoke (tier2; not part of the tier-1
suite)::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.service import BenchmarkService, CampaignRequest, ServiceClient, ServiceHTTPServer
from repro.store import bench_payload, write_json_atomic
from repro.store.environment import fingerprint

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Distinct small campaigns: realistic submission variety (different
#: kernel subsets and frameworks) over a shared cell population, so the
#: load phase exercises both whole-campaign and per-cell dedup.
CAMPAIGNS = [
    {"graphs": "urand", "kernels": "bfs,cc", "frameworks": "gap", "modes": "baseline", "scale": 6},
    {"graphs": "urand", "kernels": "pr", "frameworks": "gap,suitesparse", "modes": "baseline", "scale": 6},
    {"graphs": "urand", "kernels": "bfs,pr", "frameworks": "suitesparse", "modes": "baseline,optimized", "scale": 6},
    {"graphs": "kron", "kernels": "bfs,cc", "frameworks": "gap", "modes": "baseline", "scale": 6},
    {"graphs": "kron", "kernels": "cc,pr", "frameworks": "gap,suitesparse", "modes": "optimized", "scale": 6},
    {"graphs": "road", "kernels": "bfs,sssp", "frameworks": "gap", "modes": "baseline", "scale": 6},
    {"graphs": "road", "kernels": "sssp", "frameworks": "gap,suitesparse", "modes": "baseline,optimized", "scale": 6},
    {"graphs": "web", "kernels": "bfs,cc,pr", "frameworks": "gap", "modes": "baseline", "scale": 6},
]


def _canonical_cells(events: list[dict]) -> str:
    cells = sorted(
        (event for event in events if event["event"] == "cell"),
        key=lambda event: tuple(event["cell"]),
    )
    return json.dumps(
        [[cell["cell"], cell["result"]] for cell in cells], sort_keys=True
    )


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def run_bench(
    clients: int = 32,
    submissions: int = 1024,
    client_timeout: float = 120.0,
) -> dict[str, object]:
    """Seed, verify, and load one in-process service; returns the payload."""
    tmp = Path(tempfile.mkdtemp(prefix="repro-bench-service-"))
    service = BenchmarkService(
        archive_dir=tmp / "archive", cache_dir=tmp / "graphs", jobs=1
    )
    server = ServiceHTTPServer(("127.0.0.1", 0), service)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    requests = [CampaignRequest.from_dict(payload) for payload in CAMPAIGNS]

    try:
        # -- seed: every campaign once; all cells are misses -------------
        seed_payloads: list[str] = []
        seed_started = time.perf_counter()
        with ServiceClient(host, port, timeout=client_timeout) as client:
            for request in requests:
                events = client.submit_and_collect(request)
                assert events[-1]["event"] == "done", events[-1]
                seed_payloads.append(_canonical_cells(events))
        seed_seconds = time.perf_counter() - seed_started
        seeded_cells = service.stats["cells_executed"]

        # -- correctness: re-submission is byte-identical, zero executed -
        with ServiceClient(host, port, timeout=client_timeout) as client:
            for request, expected in zip(requests, seed_payloads):
                events = client.submit_and_collect(request)
                assert events[-1]["executed"] == 0, (
                    f"re-submission executed {events[-1]['executed']} cells"
                )
                assert _canonical_cells(events) == expected, (
                    "cached results are not byte-identical to the seed pass"
                )
        assert service.stats["cells_executed"] == seeded_cells

        # -- load: closed-loop client fleet over persistent connections --
        latencies: list[list[float]] = [[] for _ in range(clients)]
        errors: list[str] = []
        per_client = submissions // clients
        barrier = threading.Barrier(clients + 1)

        def drive(slot: int) -> None:
            try:
                with ServiceClient(host, port, timeout=client_timeout) as client:
                    client.healthz()  # open the connection outside the timed loop
                    barrier.wait()
                    for n in range(per_client):
                        request = requests[(slot + n) % len(requests)]
                        started = time.perf_counter()
                        events = client.submit_and_collect(request)
                        latencies[slot].append(time.perf_counter() - started)
                        if events[-1]["event"] != "done" or events[-1]["executed"]:
                            errors.append(f"client {slot}: {events[-1]}")
            except Exception as exc:  # noqa: BLE001 - report, don't hang
                errors.append(f"client {slot}: {type(exc).__name__}: {exc}")
                try:
                    barrier.wait(timeout=1.0)
                except threading.BrokenBarrierError:
                    pass

        threads = [
            threading.Thread(target=drive, args=(slot,), daemon=True)
            for slot in range(clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        load_started = time.perf_counter()
        for thread in threads:
            thread.join(timeout=600.0)
        load_seconds = time.perf_counter() - load_started
        assert not errors, errors[:5]

        flat = [sample for bucket in latencies for sample in bucket]
        assert len(flat) == per_client * clients
        status = service.status()
        return {
            "environment": fingerprint(),
            "config": {
                "clients": clients,
                "submissions": len(flat) + 2 * len(requests),
                "load_submissions": len(flat),
                "campaigns": len(requests),
                "seeded_cells": seeded_cells,
                "scale": 6,
            },
            "seed": {
                "wall_seconds": round(seed_seconds, 4),
                "cells_executed": seeded_cells,
            },
            "correctness": {
                "resubmission_byte_identical": True,
                "resubmission_cells_executed": 0,
            },
            "load": {
                "wall_seconds": round(load_seconds, 4),
                "submissions_per_second": round(len(flat) / load_seconds, 1),
                "latency_ms": {
                    "p50": round(_percentile(flat, 0.50) * 1e3, 3),
                    "p95": round(_percentile(flat, 0.95) * 1e3, 3),
                    "p99": round(_percentile(flat, 0.99) * 1e3, 3),
                    "mean": round(statistics.fmean(flat) * 1e3, 3),
                    "max": round(max(flat) * 1e3, 3),
                },
            },
            "hit_rate": status["hit_rate"],
            "cells_requested": status["cells_requested"],
            "cells_executed": status["cells_executed"],
        }
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown()


@pytest.mark.tier2
def test_service_bench_smoke():
    """Reduced load: the memoization and latency story holds end to end."""
    data = run_bench(clients=8, submissions=64)
    assert data["correctness"]["resubmission_byte_identical"]
    assert data["hit_rate"] >= 0.5  # seed misses dominate the tiny sample
    assert data["load"]["latency_ms"]["p95"] < 250.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=32)
    parser.add_argument("--submissions", type=int, default=1024)
    parser.add_argument(
        "--fail-below-hitrate", type=float, default=None, metavar="FRACTION",
        help="exit non-zero when the overall hit rate is below this",
    )
    parser.add_argument(
        "--fail-p95-ms", type=float, default=None, metavar="MS",
        help="exit non-zero when cached-read p95 latency exceeds this",
    )
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_service.json"), metavar="PATH",
    )
    args = parser.parse_args(argv)
    data = run_bench(clients=args.clients, submissions=args.submissions)
    payload = bench_payload("service", data)
    write_json_atomic(args.out, payload)
    print(json.dumps(payload, indent=2))
    failed = False
    if (
        args.fail_below_hitrate is not None
        and data["hit_rate"] < args.fail_below_hitrate
    ):
        print(
            f"FAIL: hit rate {data['hit_rate']:.3f} < {args.fail_below_hitrate}",
            file=sys.stderr,
        )
        failed = True
    if (
        args.fail_p95_ms is not None
        and data["load"]["latency_ms"]["p95"] > args.fail_p95_ms
    ):
        print(
            f"FAIL: p95 {data['load']['latency_ms']['p95']}ms > {args.fail_p95_ms}ms",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
