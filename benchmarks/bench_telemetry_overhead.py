"""Telemetry overhead bound: tracing must not perturb what it measures.

The runner's contract (see ``docs/TELEMETRY.md``) is that span bookkeeping
stays out of the timed region: per-trial records are materialized after
the trial loop, and JSONL emission happens once per cell.  This bench pins
that contract with the worst case — a no-op kernel, where any telemetry
work leaking into the timed region is the largest possible fraction of
the measured time.  A full telemetry setup (in-memory spans + JSONL sink)
must leave the *measured* per-trial kernel time within 5% of a run with
no telemetry attached; a regression that moves record building or sink
writes inside the trial loop shows up here as a ~30% jump.

The per-cell emission cost (which is off the timed path by design) is
bounded separately, in absolute terms, so trace serialization cannot
silently balloon either.

Run with ``pytest benchmarks/bench_telemetry_overhead.py`` (tier2; not
part of the tier-1 suite), or directly for a JSON summary written — in
the shared archive schema — to ``BENCH_telemetry_overhead.json`` at the
repo root::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py
"""

import dataclasses
import io
import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import BenchmarkSpec, GraphCase, Telemetry, run_cell
from repro.frameworks import Mode, RunContext
from repro.gapbs import GAPReference
from repro.store import bench_payload, write_json_atomic

REPO_ROOT = Path(__file__).resolve().parents[1]

TRIALS_PER_CELL = 256
REPEATS = 11
OVERHEAD_BOUND = 0.05
EMISSION_BUDGET_SECONDS = 0.005  # per cell, absolute


class NoOpFramework(GAPReference):
    """Framework whose kernels return instantly; isolates harness cost."""

    attributes = dataclasses.replace(GAPReference.attributes, name="noop")

    def connected_components(self, graph, ctx=RunContext()):
        return np.zeros(graph.num_vertices, dtype=np.int64)


def _measure(case, spec, telemetry_factory):
    """(median mean-trial-seconds, median cell wall) over paired repeats."""
    import time

    trial_means = []
    walls = []
    for _ in range(REPEATS):
        telemetry = telemetry_factory()
        start = time.perf_counter()
        result = run_cell(NoOpFramework(), "cc", case, Mode.BASELINE, spec,
                          telemetry=telemetry)
        walls.append(time.perf_counter() - start)
        if telemetry is not None:
            telemetry.close()
        trial_means.append(result.seconds)
    return (
        sorted(trial_means)[len(trial_means) // 2],
        sorted(walls)[len(walls) // 2],
    )


@pytest.fixture(scope="module")
def samples():
    case = GraphCase.build("kron", scale=8)
    spec = BenchmarkSpec(
        scale=8, trials={"cc": TRIALS_PER_CELL}, verify=False
    )
    traced_factory = lambda: Telemetry(sink=io.StringIO())
    _measure(case, spec, lambda: None)  # warm-up, discarded
    bare_trial, bare_wall = _measure(case, spec, lambda: None)
    traced_trial, traced_wall = _measure(case, spec, traced_factory)
    return bare_trial, bare_wall, traced_trial, traced_wall


@pytest.mark.tier2
def test_timed_region_overhead_below_bound(samples):
    """Telemetry must not inflate the measured kernel time by >5%."""
    bare_trial, _, traced_trial, _ = samples
    overhead = (traced_trial - bare_trial) / bare_trial
    assert overhead < OVERHEAD_BOUND, (
        f"telemetry inflates measured trial time by {overhead:.1%} "
        f"(bound {OVERHEAD_BOUND:.0%}): bare {bare_trial * 1e6:.2f} us vs "
        f"traced {traced_trial * 1e6:.2f} us per trial — telemetry work has "
        "leaked inside the timed region"
    )


@pytest.mark.tier2
def test_per_cell_emission_cost_bounded(samples):
    """The off-path span build + JSONL write stays a small constant."""
    _, bare_wall, _, traced_wall = samples
    emission = traced_wall - bare_wall
    assert emission < EMISSION_BUDGET_SECONDS, (
        f"per-cell telemetry emission cost {emission * 1e3:.2f} ms exceeds "
        f"{EMISSION_BUDGET_SECONDS * 1e3:.0f} ms budget"
    )


@pytest.mark.tier2
def test_trace_records_do_not_grow_with_trials():
    """One JSONL record per cell regardless of trial count (emission is
    per-cell, so sink cost cannot scale into the trial loop)."""
    case = GraphCase.build("kron", scale=8)
    stream = io.StringIO()
    telemetry = Telemetry(sink=stream)
    spec = BenchmarkSpec(scale=8, trials={"cc": 16}, verify=False)
    run_cell(NoOpFramework(), "cc", case, Mode.BASELINE, spec,
             telemetry=telemetry)
    lines = [line for line in stream.getvalue().splitlines() if line.strip()]
    assert len(lines) == 1


def main() -> None:
    """Measure once and write ``BENCH_telemetry_overhead.json``."""
    case = GraphCase.build("kron", scale=8)
    spec = BenchmarkSpec(scale=8, trials={"cc": TRIALS_PER_CELL}, verify=False)
    traced_factory = lambda: Telemetry(sink=io.StringIO())
    _measure(case, spec, lambda: None)  # warm-up, discarded
    bare_trial, bare_wall = _measure(case, spec, lambda: None)
    traced_trial, traced_wall = _measure(case, spec, traced_factory)
    data = {
        "trials_per_cell": TRIALS_PER_CELL,
        "repeats": REPEATS,
        "bare_trial_seconds": bare_trial,
        "traced_trial_seconds": traced_trial,
        "timed_region_overhead_fraction": (
            (traced_trial - bare_trial) / bare_trial if bare_trial > 0 else None
        ),
        "overhead_bound_fraction": OVERHEAD_BOUND,
        "per_cell_emission_seconds": traced_wall - bare_wall,
        "emission_budget_seconds": EMISSION_BUDGET_SECONDS,
    }
    payload = bench_payload("telemetry_overhead", data)
    write_json_atomic(REPO_ROOT / "BENCH_telemetry_overhead.json", payload)
    print(json.dumps(payload, indent=2))


if __name__ == "__main__":
    main()
