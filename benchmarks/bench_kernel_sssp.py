"""K-SSSP — Section V-B: delta-stepping across frameworks.

The paper's SSSP story: GAP and GraphIt share the bucket-fusion
optimization and lead; Galois narrows the Road gap with asynchronous
execution; GraphBLAS pays full-vector bucket selection per round.
"""

import pytest

from repro.frameworks import FRAMEWORK_NAMES, RunContext, get
from repro.la import use_substrate

from .conftest import delta_for, source_for


@pytest.mark.parametrize("graph_name", ["road", "kron"])
@pytest.mark.parametrize("fw_name", FRAMEWORK_NAMES)
def test_sssp(benchmark, kernel_cases, fw_name, graph_name):
    case = kernel_cases[graph_name]
    framework = get(fw_name)
    source = source_for(case)
    ctx = RunContext(graph_name=graph_name, delta=delta_for(graph_name))
    benchmark.group = f"sssp:{graph_name}"
    benchmark.pedantic(
        lambda: framework.sssp(case.weighted, source, ctx), rounds=5, warmup_rounds=1
    )


@pytest.mark.parametrize("engine", ["legacy", "substrate"])
def test_sssp_substrate_ab(benchmark, kernel_cases, engine):
    """A/B the LA substrate against the pre-port engine on the same kernel."""
    case = kernel_cases["kron"]
    framework = get("gap")
    source = source_for(case)
    ctx = RunContext(graph_name="kron", delta=delta_for("kron"))
    benchmark.group = "sssp:substrate-ab"
    def run():
        with use_substrate(engine == "substrate"):
            framework.sssp(case.weighted, source, ctx)
    benchmark.pedantic(run, rounds=5, warmup_rounds=1)
