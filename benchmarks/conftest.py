"""Shared fixtures for the benchmark suite.

The benches run at a reduced scale (2**10 vertices by default) so the full
360-cell Table IV/V sweep stays fast under pytest-benchmark's repetition;
`examples/report_tables.py` runs the same harness at the full default scale
and regenerates the EXPERIMENTS.md tables.  Set REPRO_BENCH_SCALE to
override.
"""

from __future__ import annotations

import os

import pytest

from repro.core import BenchmarkSpec, GraphCase, SourcePicker
from repro.core.spec import DELTA_BY_GRAPH
from repro.frameworks import get
from repro.generators import GRAPH_NAMES

BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "10"))
KERNEL_SCALE = int(os.environ.get("REPRO_KERNEL_BENCH_SCALE", "11"))


@pytest.fixture(scope="session")
def cases() -> dict[str, GraphCase]:
    """The five-graph corpus, prebuilt once (untimed, per GAP rules)."""
    return {name: GraphCase.build(name, scale=BENCH_SCALE) for name in GRAPH_NAMES}


@pytest.fixture(scope="session")
def kernel_cases() -> dict[str, GraphCase]:
    """Contrast pair (road vs kron) at a larger scale for per-kernel benches."""
    return {name: GraphCase.build(name, scale=KERNEL_SCALE) for name in ("road", "kron")}


@pytest.fixture(scope="session")
def spec() -> BenchmarkSpec:
    return BenchmarkSpec(scale=BENCH_SCALE, trials={k: 1 for k in ("bfs", "sssp", "cc", "pr", "bc", "tc")})


def source_for(case: GraphCase, seed: int = 0) -> int:
    return SourcePicker(case.graph, seed).next_source()


def bc_roots(case: GraphCase, seed: int = 0):
    return SourcePicker(case.graph, seed).next_sources(4)


def delta_for(name: str) -> int:
    return DELTA_BY_GRAPH.get(name, 16)


def framework(name: str):
    return get(name)
