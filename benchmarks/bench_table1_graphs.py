"""T1 — Table I: generate and characterize the five-graph corpus.

Each benchmark generates one corpus analog and attaches its measured
Table I row (vertices, edges, degree, distribution class, approximate
diameter) alongside the paper's original statistics via
``benchmark.extra_info``, so the pytest-benchmark report carries the whole
paper-vs-generated comparison.
"""

import pytest

from repro.generators import GAP_GRAPHS, GRAPH_NAMES, build_graph
from repro.graphs import analyze

from .conftest import BENCH_SCALE


@pytest.mark.parametrize("name", GRAPH_NAMES)
def test_generate_and_characterize(benchmark, name):
    graph = benchmark.pedantic(
        lambda: build_graph(name, scale=BENCH_SCALE),
        rounds=3,
        warmup_rounds=1,
    )
    properties = analyze(graph, name)
    paper = GAP_GRAPHS[name]
    benchmark.extra_info.update(
        {
            "vertices": properties.num_vertices,
            "edges": properties.num_edges,
            "directed": properties.directed,
            "degree": round(properties.average_degree, 2),
            "distribution": properties.degree_distribution,
            "approx_diameter": properties.approx_diameter,
            "paper_distribution": paper.paper_distribution,
            "paper_diameter": paper.paper_diameter,
            "paper_degree": paper.paper_degree,
        }
    )
    # The Table I topology-class contract must hold at bench scale too.
    assert properties.degree_distribution == paper.paper_distribution
