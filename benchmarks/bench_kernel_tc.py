"""K-TC — Section V-F: triangle counting.

The paper's TC story: GKC's batched (SIMD-analog) intersection with
heuristic relabeling outperforms the reference on every graph; the masked
``C<L> = L*U'`` product is SuiteSparse's formulation; relabeling is timed
(except Galois' Optimized runs, exercised via the prepare hook in the
Table IV/V sweep).
"""

import pytest

from repro.frameworks import FRAMEWORK_NAMES, RunContext, get
from repro.la import use_substrate


@pytest.mark.parametrize("graph_name", ["road", "kron"])
@pytest.mark.parametrize("fw_name", FRAMEWORK_NAMES)
def test_tc(benchmark, kernel_cases, fw_name, graph_name):
    case = kernel_cases[graph_name]
    framework = get(fw_name)
    ctx = RunContext(graph_name=graph_name)
    benchmark.group = f"tc:{graph_name}"
    benchmark.pedantic(
        lambda: framework.triangle_count(case.undirected, ctx),
        rounds=5,
        warmup_rounds=1,
    )


@pytest.mark.parametrize("engine", ["legacy", "substrate"])
def test_tc_substrate_ab(benchmark, kernel_cases, engine):
    """A/B the LA substrate against the pre-port engine on the same kernel."""
    case = kernel_cases["kron"]
    framework = get("gap")
    ctx = RunContext(graph_name="kron")
    benchmark.group = "tc:substrate-ab"
    def run():
        with use_substrate(engine == "substrate"):
            framework.triangle_count(case.undirected, ctx)
    benchmark.pedantic(run, rounds=5, warmup_rounds=1)
