"""S1 — scaling series: kernel time vs graph scale on the reference.

The paper's corpus is fixed-scale, but its discussion of Road repeatedly
appeals to how per-round overheads scale with problem size; this bench
produces the time-vs-scale series for the GAP reference on the two
contrasting topologies, so the growth shape (near-linear for the bulk
kernels, overhead-dominated for Road's tiny frontiers) is measurable.
"""

import pytest

from repro.core import GraphCase, SourcePicker
from repro.core.spec import DELTA_BY_GRAPH
from repro.frameworks import get

SCALES = (9, 10, 11, 12)


@pytest.fixture(scope="module")
def scaled_cases():
    """road/kron at each scale of the sweep."""
    return {
        (name, scale): GraphCase.build(name, scale=scale)
        for name in ("road", "kron")
        for scale in SCALES
    }


@pytest.mark.parametrize("scale", SCALES)
@pytest.mark.parametrize("graph_name", ["road", "kron"])
@pytest.mark.parametrize("kernel", ["bfs", "sssp", "pr", "cc"])
def test_scaling(benchmark, scaled_cases, kernel, graph_name, scale):
    case = scaled_cases[(graph_name, scale)]
    gap = get("gap")
    benchmark.group = f"scaling:{kernel}:{graph_name}"
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["edges"] = case.graph.num_edges
    if kernel == "bfs":
        source = SourcePicker(case.graph).next_source()
        run = lambda: gap.bfs(case.graph, source)
    elif kernel == "sssp":
        source = SourcePicker(case.graph).next_source()
        from repro.frameworks import RunContext

        ctx = RunContext(delta=DELTA_BY_GRAPH.get(graph_name, 16))
        run = lambda: gap.sssp(case.weighted, source, ctx)
    elif kernel == "pr":
        run = lambda: gap.pagerank(case.graph)
    else:
        run = lambda: gap.connected_components(case.graph)
    benchmark.pedantic(run, rounds=3, warmup_rounds=1)
