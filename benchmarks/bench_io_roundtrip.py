"""I/O round-trip benchmark: vectorized edge-list write/read and ingest.

``write_edge_list`` emits each graph as one ``np.column_stack`` +
``np.savetxt`` call per direction instead of a Python-level loop over
edges; ``read_edge_list``/``read_mtx`` parse in ``np.loadtxt`` chunks.
This bench pins the round-trip cost of both sides at corpus scale so a
regression back to per-edge Python shows up as a step change.
"""

from __future__ import annotations

import pytest

from repro.generators import build_graph, weighted_version
from repro.graphs import load_graph_file, read_edge_list, write_edge_list

from .conftest import BENCH_SCALE


@pytest.fixture(scope="module")
def kron_graph():
    return build_graph("kron", scale=BENCH_SCALE)


@pytest.fixture(scope="module")
def weighted_road():
    return weighted_version(build_graph("road", scale=BENCH_SCALE))


def test_write_edge_list(benchmark, tmp_path, kron_graph):
    benchmark.group = "io:write"
    benchmark.pedantic(
        lambda: write_edge_list(kron_graph, tmp_path / "g.el"),
        rounds=5,
        warmup_rounds=1,
    )


def test_write_weighted_edge_list(benchmark, tmp_path, weighted_road):
    benchmark.group = "io:write"
    benchmark.pedantic(
        lambda: write_edge_list(weighted_road, tmp_path / "g.wel"),
        rounds=5,
        warmup_rounds=1,
    )


def test_read_edge_list(benchmark, tmp_path, kron_graph):
    path = tmp_path / "g.el"
    write_edge_list(kron_graph, path)
    benchmark.group = "io:read"
    benchmark.pedantic(lambda: read_edge_list(path), rounds=5, warmup_rounds=1)


def test_roundtrip_through_ingest(benchmark, tmp_path, kron_graph):
    """Full dataset-pipeline shape: write, then re-ingest via the loader."""
    path = tmp_path / "g.el"
    write_edge_list(kron_graph, path)
    benchmark.group = "io:read"
    result = benchmark.pedantic(
        lambda: load_graph_file(path), rounds=5, warmup_rounds=1
    )
    assert result == kron_graph
