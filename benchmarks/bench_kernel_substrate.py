"""Substrate A/B bench: the LA tier against the pre-port kernels.

Every ``repro.la`` primitive keeps its pre-port reference formulation
behind the :mod:`repro.la.config` switch, so the *same* kernel entry
points can be timed under both engines in one process — no checkout
juggling, no stale baselines.  This bench runs the six GAP kernels on the
road/kron contrast pair at two scales (a CI smoke scale and the kernel
scale the per-kernel benches use), and for each cell records:

* best-of-N wall time under the legacy engine (``use_substrate(False)``);
* best-of-N wall time under the substrate (``use_substrate(True)``);
* whether the work counters (edges examined, rounds, iterations) agree —
  the substrate must speed the work up, not silently do less of it.

The consolidated summary lands in ``BENCH_kernels.json`` (shared archive
envelope) with per-kernel speedups and the geomean at each scale.  The
acceptance bar: geomean >= 1.3x at the larger scale, counters equal
everywhere.

Run under pytest (tier2 smoke)::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernel_substrate.py

or directly for the JSON summary (CI's kernel-bench job does this at the
smoke scale with ``--fail-below 0.9``: >10% regression fails the build)::

    PYTHONPATH=src python benchmarks/bench_kernel_substrate.py
"""

from __future__ import annotations

import argparse
import json
import math
import os
import time
from pathlib import Path

import pytest

from repro.core import GraphCase, SourcePicker, counters
from repro.frameworks import KERNELS, RunContext, get
from repro.la import use_substrate
from repro.store import bench_payload, write_json_atomic

REPO_ROOT = Path(__file__).resolve().parents[1]

SMOKE_SCALE = int(os.environ.get("REPRO_SUBSTRATE_SMOKE_SCALE", "9"))
FULL_SCALE = int(os.environ.get("REPRO_KERNEL_BENCH_SCALE", "11"))
GRAPHS = ("kron", "road")
REPEATS = 3


def _kernel_thunk(kernel: str, framework, case: GraphCase):
    """Bind one kernel invocation; graph building stays untimed."""
    ctx = RunContext(graph_name=case.name)
    picker = SourcePicker(case.graph, seed=0)
    if kernel == "bfs":
        source = picker.next_source()
        return lambda: framework.bfs(case.graph, source, ctx)
    if kernel == "sssp":
        source = picker.next_source()
        return lambda: framework.sssp(case.weighted, source, ctx)
    if kernel == "cc":
        return lambda: framework.connected_components(case.graph, ctx)
    if kernel == "pr":
        return lambda: framework.pagerank(case.graph, ctx)
    if kernel == "bc":
        roots = picker.next_sources(4)
        return lambda: framework.betweenness(case.graph, roots, ctx)
    return lambda: framework.triangle_count(case.undirected, ctx)


def _time_engine(thunk, substrate: bool) -> tuple[float, tuple[int, int, int]]:
    """Best-of-REPEATS wall time plus the (stable) counter totals."""
    best = math.inf
    with use_substrate(substrate):
        with counters.counting() as work:
            thunk()  # warmup, and the counted run
        totals = (work.edges_examined, work.rounds, work.iterations)
        for _ in range(REPEATS):
            start = time.perf_counter()
            thunk()
            best = min(best, time.perf_counter() - start)
    return best, totals


def measure_scale(scale: int) -> dict:
    """A/B every kernel x graph cell at one scale."""
    cases = {name: GraphCase.build(name, scale=scale) for name in GRAPHS}
    cells = {}
    speedups_by_kernel: dict[str, list[float]] = {k: [] for k in KERNELS}
    framework = get("gap")
    for kernel in KERNELS:
        for graph_name, case in cases.items():
            thunk = _kernel_thunk(kernel, framework, case)
            legacy_s, legacy_work = _time_engine(thunk, substrate=False)
            substrate_s, substrate_work = _time_engine(thunk, substrate=True)
            speedup = legacy_s / substrate_s if substrate_s > 0 else math.inf
            speedups_by_kernel[kernel].append(speedup)
            cells[f"{kernel}:{graph_name}"] = {
                "legacy_seconds": round(legacy_s, 6),
                "substrate_seconds": round(substrate_s, 6),
                "speedup": round(speedup, 3),
                "counters_equal": legacy_work == substrate_work,
                "edges_examined": legacy_work[0],
            }
    per_kernel = {
        kernel: round(math.exp(sum(map(math.log, s)) / len(s)), 3)
        for kernel, s in speedups_by_kernel.items()
    }
    all_speedups = [s for values in speedups_by_kernel.values() for s in values]
    return {
        "scale": scale,
        "cells": cells,
        "per_kernel_speedup": per_kernel,
        "geomean_speedup": round(
            math.exp(sum(map(math.log, all_speedups)) / len(all_speedups)), 3
        ),
        "counters_all_equal": all(c["counters_equal"] for c in cells.values()),
    }


def run_bench(scales: tuple[int, ...]) -> dict:
    payload_data = {
        "graphs": list(GRAPHS),
        "kernels": list(KERNELS),
        "repeats": REPEATS,
        "scales": {str(scale): measure_scale(scale) for scale in scales},
    }
    return bench_payload("kernel_substrate", payload_data)


# --- pytest entry points (tier2: smoke scale only) -------------------------

@pytest.fixture(scope="module")
def smoke_results():
    return measure_scale(SMOKE_SCALE)


@pytest.mark.tier2
def test_substrate_preserves_counters(smoke_results):
    mismatched = [
        cell for cell, data in smoke_results["cells"].items()
        if not data["counters_equal"]
    ]
    assert not mismatched, f"counter totals diverged in: {mismatched}"


@pytest.mark.tier2
def test_substrate_not_slower_at_smoke_scale(smoke_results):
    """Report-only per cell; the geomean must clear the regression bar."""
    assert smoke_results["geomean_speedup"] >= 0.9, smoke_results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scales", type=int, nargs="+", default=[SMOKE_SCALE, FULL_SCALE],
        help="graph scales to A/B (default: smoke + kernel scale)",
    )
    parser.add_argument(
        "--fail-below", type=float, default=None, metavar="X",
        help="exit nonzero if the largest scale's geomean speedup < X",
    )
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_kernels.json",
    )
    args = parser.parse_args()
    payload = run_bench(tuple(dict.fromkeys(args.scales)))
    write_json_atomic(args.out, payload)
    print(json.dumps(payload, indent=2))
    largest = payload["data"]["scales"][str(max(args.scales))]
    if not largest["counters_all_equal"]:
        print("FAIL: work counters diverged between engines")
        return 1
    if args.fail_below is not None and largest["geomean_speedup"] < args.fail_below:
        print(
            f"FAIL: geomean speedup {largest['geomean_speedup']} "
            f"below bar {args.fail_below}"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
