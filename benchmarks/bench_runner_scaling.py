"""Campaign scaling bench: warm pools, batched dispatch, and cache savings.

The parallel executor exists to cut campaign wall time; this bench is
the proof (and the regression gate) that it actually does.  The same
campaign — large enough that cell execution, not dispatch, dominates —
is timed under every execution architecture:

* ``serial`` — the in-process baseline (``jobs=1``);
* ``cold_spawn`` — a fresh process pool per campaign with per-cell
  dispatch (``batch_size=1``): the pre-warm-pool architecture, kept as
  the overhead yardstick;
* ``warm_pool`` — one :class:`WorkerPool` reused across campaigns with
  auto-batched dispatch, at ``jobs=2`` and ``jobs=4`` (spawn cost paid
  once, outside the timed region, which is how real campaign sessions
  amortize it);
* ``threads`` — the thread pool (``--pool threads``) at ``jobs=2``.

CPU counts are recorded honestly: ``cpu_count`` is the machine's, and
``cpus_available`` is what this process may actually use
(``sched_getaffinity`` — containers and CI runners routinely pin fewer
cores than the machine has).  The speedup acceptance (warm ``jobs=2``
>= 1.0x over serial) applies only when >= 2 CPUs are *available*; below
that the numbers are reported but not gated, and the warm-vs-cold
comparison — which does not need a second core to hold — gates instead.

Run under pytest (tier2; not part of the tier-1 suite)::

    PYTHONPATH=src python -m pytest benchmarks/bench_runner_scaling.py

or directly for a JSON summary (also written, in the shared archive
schema, to ``BENCH_runner_scaling.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_runner_scaling.py
"""

import json
import os
import tempfile
import time
from pathlib import Path

import pytest

from repro.core import BenchmarkSpec, WorkerPool, run_suite
from repro.core.executor import run_suite_parallel, run_suite_threads
from repro.core.runner import build_case
from repro.frameworks import Mode, get
from repro.graphs import GraphCache
from repro.store import bench_payload, write_json_atomic

REPO_ROOT = Path(__file__).resolve().parents[1]

BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "12"))
GRAPHS = ["kron", "road"]
KERNELS_USED = ["bfs", "cc", "pr", "sssp"]
MODES = [Mode.BASELINE, Mode.OPTIMIZED]
TRIALS = 3
SPEEDUP_BOUND = 1.0  # warm jobs=2 must at least not lose to serial
REPEATS = 3

SPEC = BenchmarkSpec(
    scale=BENCH_SCALE, trials={k: TRIALS for k in KERNELS_USED}
)
CELLS = len(GRAPHS) * len(MODES) * len(KERNELS_USED)


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    ``os.cpu_count()`` reports the machine; containers and CI runners
    often pin the process to fewer cores, and pretending otherwise is
    how a scaling bench lies to its gate.
    """
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _check(results) -> None:
    assert len(results) == CELLS
    assert all(r.ok for r in results)


def _time_repeats(run) -> float:
    """Best-of-N wall time of one campaign architecture."""
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        _check(run())
        best = min(best, time.perf_counter() - start)
    return best


def _campaign_walls(cache: GraphCache) -> dict[str, float]:
    """Wall time per execution architecture, over a prewarmed cache."""
    frameworks = [get("gap")]
    common = dict(
        kernels=KERNELS_USED, modes=MODES, cache=cache
    )
    walls: dict[str, float] = {}

    walls["serial"] = _time_repeats(
        lambda: run_suite(frameworks, GRAPHS, spec=SPEC, jobs=1, **common)
    )

    cold_spec = BenchmarkSpec(
        scale=BENCH_SCALE, trials={k: TRIALS for k in KERNELS_USED}, batch_size=1
    )
    walls["cold_spawn_jobs2"] = _time_repeats(
        lambda: run_suite_parallel(
            frameworks, GRAPHS, spec=cold_spec, jobs=2, **common
        )
    )

    for jobs in (2, 4):
        with WorkerPool(jobs) as pool:  # spawned once, outside the timing
            walls[f"warm_pool_jobs{jobs}"] = _time_repeats(
                lambda: run_suite_parallel(
                    frameworks, GRAPHS, spec=SPEC, jobs=jobs, pool=pool, **common
                )
            )

    threads_spec = BenchmarkSpec(
        scale=BENCH_SCALE, trials={k: TRIALS for k in KERNELS_USED}, pool="threads"
    )
    walls["threads_jobs2"] = _time_repeats(
        lambda: run_suite_threads(
            frameworks, GRAPHS, spec=threads_spec, jobs=2, **common
        )
    )
    return walls


def _cache_build_seconds(root) -> tuple[float, float]:
    """(cold, warm) corpus build times through one fresh cache."""
    cache = GraphCache(root)
    start = time.perf_counter()
    for name in GRAPHS:
        build_case(name, SPEC, cache)
    cold = time.perf_counter() - start
    assert cache.misses == len(GRAPHS)
    warm = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for name in GRAPHS:
            build_case(name, SPEC, cache)
        warm = min(warm, time.perf_counter() - start)
    assert cache.hits == len(GRAPHS) * REPEATS
    return cold, warm


@pytest.fixture(scope="module")
def scaling():
    with tempfile.TemporaryDirectory() as tmp:
        cache = GraphCache(tmp)
        for name in GRAPHS:  # prewarm: scaling timings exclude graph builds
            build_case(name, SPEC, cache)
        yield _campaign_walls(cache)


@pytest.mark.tier2
def test_warm_pool_jobs2_not_slower_than_serial(scaling):
    """The headline gate: warm-pool --jobs 2 must beat (or tie) serial.

    Only meaningful with a second core available; single-core hosts
    report the ratio and skip.
    """
    cpus = available_cpus()
    speedup = scaling["serial"] / scaling["warm_pool_jobs2"]
    if cpus < 2:
        pytest.skip(
            f"only {cpus} CPU(s) available: no parallel speedup is possible "
            f"(measured {speedup:.2f}x)"
        )
    assert speedup >= SPEEDUP_BOUND, (
        f"warm-pool jobs=2 speedup {speedup:.2f}x below {SPEEDUP_BOUND}x "
        f"(serial {scaling['serial']:.2f}s vs "
        f"warm {scaling['warm_pool_jobs2']:.2f}s)"
    )


@pytest.mark.tier2
def test_warm_pool_beats_cold_spawn(scaling):
    """Warm pools must beat spawn-per-campaign regardless of core count:
    the spawn and per-cell dispatch costs they eliminate are real work
    the CPU no longer does, not parallelism."""
    warm, cold = scaling["warm_pool_jobs2"], scaling["cold_spawn_jobs2"]
    assert warm <= cold * 1.10, (
        f"warm pool {warm:.2f}s vs cold spawn {cold:.2f}s — pool reuse "
        "and batching should strictly reduce overhead"
    )


@pytest.mark.tier2
def test_parallel_overhead_is_bounded(scaling):
    """Even with no cores to spare, the pool must not implode wall time."""
    assert scaling["warm_pool_jobs2"] <= scaling["serial"] * 3.0 + 2.0, (
        f"warm jobs=2 wall {scaling['warm_pool_jobs2']:.2f}s vs serial "
        f"{scaling['serial']:.2f}s — executor overhead out of proportion"
    )


@pytest.mark.tier2
def test_warm_cache_build_not_slower_than_cold(tmp_path):
    cold, warm = _cache_build_seconds(tmp_path)
    assert warm <= cold * 1.2, (
        f"warm corpus build {warm:.3f}s vs cold {cold:.3f}s — cache hits "
        "should skip generation"
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        cold, warm = _cache_build_seconds(os.path.join(tmp, "cache-timing"))
        cache = GraphCache(os.path.join(tmp, "cache"))
        for name in GRAPHS:
            build_case(name, SPEC, cache)
        walls = _campaign_walls(cache)
    serial = walls["serial"]
    data = {
        "scale": BENCH_SCALE,
        "cells": CELLS,
        "trials_per_cell": TRIALS,
        "cpu_count": os.cpu_count(),
        "cpus_available": available_cpus(),
        "campaign_wall_seconds": {
            name: round(wall, 4) for name, wall in walls.items()
        },
        "speedup_vs_serial": {
            # The gate key: warm-pool jobs=2, the architecture under test.
            "jobs=2": round(serial / walls["warm_pool_jobs2"], 3),
            "jobs=4": round(serial / walls["warm_pool_jobs4"], 3),
            "threads_jobs=2": round(serial / walls["threads_jobs2"], 3),
            "cold_spawn_jobs=2": round(serial / walls["cold_spawn_jobs2"], 3),
        },
        "warm_pool_vs_cold_spawn": {
            "jobs=2": round(
                walls["cold_spawn_jobs2"] / walls["warm_pool_jobs2"], 3
            ),
        },
        "corpus_build_seconds": {
            "cold": round(cold, 4),
            "warm": round(warm, 4),
            "speedup": round(cold / warm, 1) if warm > 0 else None,
        },
    }
    payload = bench_payload("runner_scaling", data)
    write_json_atomic(REPO_ROOT / "BENCH_runner_scaling.json", payload)
    print(json.dumps(payload, indent=2))


if __name__ == "__main__":
    main()
