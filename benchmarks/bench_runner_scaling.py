"""Campaign scaling bench: process-pool speedup and graph-cache savings.

The parallel executor exists to cut campaign wall time, and the graph
cache exists to cut the (untimed, but very real) corpus build time on
repeat campaigns.  This bench measures both:

* the same small campaign is timed at ``--jobs 1/2/4`` over a prewarmed
  cache, so the comparison isolates cell execution from graph building;
  on a multi-core host ``--jobs 4`` must reach a 1.5x speedup over
  serial (the acceptance bound) — single-core hosts skip the assertion
  and just report the measured ratio;
* the corpus build is timed cold (generate + store) and warm (cache
  hit), and a warm build must not be slower than a cold one.

Run under pytest (tier2; not part of the tier-1 suite)::

    PYTHONPATH=src python -m pytest benchmarks/bench_runner_scaling.py

or directly for a JSON summary (also written, in the shared archive
schema, to ``BENCH_runner_scaling.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_runner_scaling.py
"""

import json
import os
import tempfile
import time
from pathlib import Path

import pytest

from repro.core import BenchmarkSpec, run_suite
from repro.core.runner import build_case
from repro.frameworks import Mode, get
from repro.graphs import GraphCache
from repro.store import bench_payload, write_json_atomic

REPO_ROOT = Path(__file__).resolve().parents[1]

BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "10"))
GRAPHS = ["kron", "road"]
KERNELS_USED = ["bfs", "cc", "pr"]
MODES = [Mode.BASELINE, Mode.OPTIMIZED]
JOB_COUNTS = (1, 2, 4)
SPEEDUP_BOUND = 1.5
REPEATS = 3

SPEC = BenchmarkSpec(scale=BENCH_SCALE, trials={k: 1 for k in KERNELS_USED})


def _campaign_seconds(jobs: int, cache: GraphCache) -> float:
    """Best-of-N wall time for one campaign at the given worker count."""
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        results = run_suite(
            [get("gap")], GRAPHS, kernels=KERNELS_USED, modes=MODES,
            spec=SPEC, jobs=jobs, cache=cache,
        )
        elapsed = time.perf_counter() - start
        assert len(results) == len(GRAPHS) * len(MODES) * len(KERNELS_USED)
        assert all(r.ok for r in results)
        best = min(best, elapsed)
    return best


def _cache_build_seconds(root) -> tuple[float, float]:
    """(cold, warm) corpus build times through one fresh cache."""
    cache = GraphCache(root)
    start = time.perf_counter()
    for name in GRAPHS:
        build_case(name, SPEC, cache)
    cold = time.perf_counter() - start
    assert cache.misses == len(GRAPHS)
    warm = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for name in GRAPHS:
            build_case(name, SPEC, cache)
        warm = min(warm, time.perf_counter() - start)
    assert cache.hits == len(GRAPHS) * REPEATS
    return cold, warm


@pytest.fixture(scope="module")
def scaling():
    with tempfile.TemporaryDirectory() as tmp:
        cache = GraphCache(tmp)
        for name in GRAPHS:  # prewarm: scaling timings exclude graph builds
            build_case(name, SPEC, cache)
        yield {jobs: _campaign_seconds(jobs, cache) for jobs in JOB_COUNTS}


@pytest.mark.tier2
def test_parallel_campaign_reaches_speedup_bound(scaling):
    """--jobs 4 must be >= 1.5x faster than serial (multi-core hosts)."""
    cores = os.cpu_count() or 1
    speedup = scaling[1] / scaling[4]
    if cores < 2:
        pytest.skip(
            f"only {cores} CPU core(s): no parallel speedup is possible "
            f"(measured {speedup:.2f}x)"
        )
    assert speedup >= SPEEDUP_BOUND, (
        f"--jobs 4 speedup {speedup:.2f}x below {SPEEDUP_BOUND}x bound "
        f"(serial {scaling[1]:.2f}s vs jobs=4 {scaling[4]:.2f}s)"
    )


@pytest.mark.tier2
def test_parallel_overhead_is_bounded(scaling):
    """Even with no cores to spare, the pool must not implode wall time.

    Bounds pool setup + IPC + shared-memory publication: a jobs=2 run may
    lose to serial on a single core, but only by a constant factor.
    """
    assert scaling[2] <= scaling[1] * 3.0 + 2.0, (
        f"jobs=2 wall {scaling[2]:.2f}s vs serial {scaling[1]:.2f}s — "
        "executor overhead out of proportion"
    )


@pytest.mark.tier2
def test_warm_cache_build_not_slower_than_cold(tmp_path):
    cold, warm = _cache_build_seconds(tmp_path)
    assert warm <= cold * 1.2, (
        f"warm corpus build {warm:.3f}s vs cold {cold:.3f}s — cache hits "
        "should skip generation"
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        cold, warm = _cache_build_seconds(os.path.join(tmp, "cache-timing"))
        cache = GraphCache(os.path.join(tmp, "cache"))
        for name in GRAPHS:
            build_case(name, SPEC, cache)
        walls = {jobs: _campaign_seconds(jobs, cache) for jobs in JOB_COUNTS}
    data = {
        "scale": BENCH_SCALE,
        "cells": len(GRAPHS) * len(MODES) * len(KERNELS_USED),
        "cpu_count": os.cpu_count(),
        "campaign_wall_seconds": {
            f"jobs={jobs}": round(wall, 4) for jobs, wall in walls.items()
        },
        "speedup_vs_serial": {
            f"jobs={jobs}": round(walls[1] / wall, 3)
            for jobs, wall in walls.items()
        },
        "corpus_build_seconds": {
            "cold": round(cold, 4),
            "warm": round(warm, 4),
            "speedup": round(cold / warm, 1) if warm > 0 else None,
        },
    }
    payload = bench_payload("runner_scaling", data)
    write_json_atomic(REPO_ROOT / "BENCH_runner_scaling.json", payload)
    print(json.dumps(payload, indent=2))


if __name__ == "__main__":
    main()
