"""X1 — beyond-GAP kernels: the Graphalytics CDLP and LCC extensions.

The paper's introduction positions GAP against LDBC Graphalytics, whose
kernel set adds community detection via label propagation and local
clustering coefficient; these benches cover that delta on the same corpus
contrast pair.
"""

import pytest

from repro.extensions import cdlp, lcc


@pytest.mark.parametrize("graph_name", ["road", "kron"])
def test_cdlp(benchmark, kernel_cases, graph_name):
    case = kernel_cases[graph_name]
    benchmark.group = f"cdlp:{graph_name}"
    benchmark.pedantic(lambda: cdlp(case.graph, max_iterations=10), rounds=3, warmup_rounds=1)


@pytest.mark.parametrize("graph_name", ["road", "kron"])
def test_lcc(benchmark, kernel_cases, graph_name):
    case = kernel_cases[graph_name]
    benchmark.group = f"lcc:{graph_name}"
    benchmark.pedantic(lambda: lcc(case.undirected), rounds=3, warmup_rounds=1)
