"""K-PR — Section V-D: Jacobi vs Gauss-Seidel PageRank.

The paper's PR story: every framework using Gauss-Seidel (Galois, GKC,
NWGraph) converges in fewer iterations than the Jacobi reference; GraphIt
adds cache tiling in Optimized mode.  See EXPERIMENTS.md for how the
vectorized substrate shifts the wall-clock side of this comparison.
"""

import pytest

from repro.frameworks import FRAMEWORK_NAMES, Mode, RunContext, get
from repro.la import use_substrate


@pytest.mark.parametrize("graph_name", ["road", "kron"])
@pytest.mark.parametrize("fw_name", FRAMEWORK_NAMES)
def test_pr(benchmark, kernel_cases, fw_name, graph_name):
    case = kernel_cases[graph_name]
    framework = get(fw_name)
    ctx = RunContext(graph_name=graph_name)
    benchmark.group = f"pr:{graph_name}"
    benchmark.pedantic(
        lambda: framework.pagerank(case.graph, ctx), rounds=5, warmup_rounds=1
    )


def test_pr_graphit_tiled(benchmark, kernel_cases):
    """GraphIt's Optimized cache-tiled schedule on the power-law graph."""
    case = kernel_cases["kron"]
    framework = get("graphit")
    ctx = RunContext(mode=Mode.OPTIMIZED, graph_name="kron")
    benchmark.group = "pr:kron"
    benchmark.pedantic(
        lambda: framework.pagerank(case.graph, ctx), rounds=5, warmup_rounds=1
    )


@pytest.mark.parametrize("engine", ["legacy", "substrate"])
def test_pr_substrate_ab(benchmark, kernel_cases, engine):
    """A/B the LA substrate against the pre-port engine on the same kernel."""
    case = kernel_cases["kron"]
    framework = get("gap")
    ctx = RunContext(graph_name="kron")
    benchmark.group = "pr:substrate-ab"
    def run():
        with use_substrate(engine == "substrate"):
            framework.pagerank(case.graph, ctx)
    benchmark.pedantic(run, rounds=5, warmup_rounds=1)
