"""Chaos soak: storage faults + SIGKILLs, then prove nothing was lost.

The resilience story this repo tells is only credible if it survives an
adversarial run: a server whose disk tears writes, reports full, fails
fsyncs, and silently flips bits — while the process itself is SIGKILLed
mid-campaign, repeatedly.  This soak drives exactly that and then holds
the storage tier to its contract:

* **soak rounds** — each round restarts the server (``--resume``) on the
  same archive with a *randomized but deterministic* I/O fault plan
  (``REPRO_IO_FAULTS``) and compute fault plan (``REPRO_FAULTS``)
  injected through the environment, drives a small client fleet through
  overlapping campaigns, and SIGKILLs the whole process group mid-work.
  Client-side transport errors are expected; *corruption* is not: every
  ``cell`` event a client ever receives is recorded by digest.
* **degraded round** — the server is restarted with an impossible disk
  watermark (``REPRO_MIN_FREE_BYTES``): submissions holding misses must
  come back as a structured terminal ``degraded`` event (hits still
  served, misses rejected, nothing written), ``/health`` must report
  degraded, and a SIGTERM must drain to exit code 0.
* **scrub** — :func:`repro.store.scrub` on the battered archive must
  reach a ``clean``/``healed`` verdict, and a second scrub must be
  ``clean``: self-healing converges.
* **cold restart** — a final fault-free server re-serves the campaigns.
  Every cell completed during the soak whose run survived scrub (its
  digest is still in the rebuilt cell index) must come back
  ``cached: true`` — zero recompute; cells whose backing run scrub
  *quarantined* are the only permitted re-executions (served-corrupt is
  never an option).  A second pass must be 100% cached and
  byte-identical to the first.

Run directly for a JSON summary (also written to
``BENCH_chaos_soak.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_chaos_soak.py
    PYTHONPATH=src python benchmarks/bench_chaos_soak.py --rounds 6

or under pytest for a reduced smoke (tier2/slow; not part of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/bench_chaos_soak.py
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.errors import ServiceError
from repro.service import ServiceClient
from repro.store import (
    RunArchive,
    bench_payload,
    open_self_healing_index,
    scrub,
    write_json_atomic,
)
from repro.store.environment import fingerprint

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = str(REPO_ROOT / "src")

#: Overlapping small campaigns (shared cells dedupe across the fleet).
#: Quick kernels at a small scale keep each cell ~milliseconds, so kills
#: land between cells as often as inside one.
CAMPAIGNS = [
    {"graphs": "urand", "kernels": "bfs,cc", "frameworks": "gap",
     "modes": "baseline", "scale": 6},
    {"graphs": "urand,kron", "kernels": "cc", "frameworks": "gap,suitesparse",
     "modes": "baseline", "scale": 6},
    {"graphs": "kron", "kernels": "bfs,pr", "frameworks": "gap",
     "modes": "baseline,optimized", "scale": 6},
    {"graphs": "road", "kernels": "bfs,sssp", "frameworks": "gap",
     "modes": "baseline", "scale": 6},
]

#: A campaign never submitted during the soak: its cells are guaranteed
#: misses for the degraded-mode round.
DEGRADED_CAMPAIGN = {
    "graphs": "web", "kernels": "pr", "frameworks": "suitesparse",
    "modes": "baseline", "scale": 6,
}

#: Path substrings the random I/O plans aim at.  Loud faults (enospc,
#: torn-write, fsync-fail) may hit anything — they fail the operation
#: before anything is promised.  Silent bit-flips are aimed at the
#: *checksummed replayable* surfaces (cell index, journals), where
#: recovery loses nothing; flipped archive payloads are exercised
#: separately because they legitimately cost the damaged run (the
#: quarantine path — see the cold-restart accounting).
LOUD_TARGETS = ("cell_index", "journals", "runs", "manifest.json")
FLIP_TARGETS = ("cell_index", "journals")


def _random_io_plan(rng: random.Random, flip_archive: bool) -> list[dict]:
    plan: list[dict] = []
    for _ in range(rng.randrange(1, 4)):
        kind = rng.choice(("enospc", "torn-write", "fsync-fail", "bit-flip"))
        if kind == "bit-flip":
            target = rng.choice(FLIP_TARGETS)
        else:
            target = rng.choice(LOUD_TARGETS)
        plan.append({"kind": kind, "path": target, "count": rng.randrange(0, 5)})
    if flip_archive:
        # The served-corrupt scenario: one archived results.json is
        # silently damaged during staging; scrub must catch it.
        plan.append({"kind": "bit-flip", "path": "results.json",
                     "count": rng.randrange(0, 2)})
    return plan


def _random_compute_plan(rng: random.Random) -> list[dict]:
    if rng.random() < 0.5:
        return []
    # A first-attempt error on one kernel: the retry policy absorbs it.
    return [{"kind": "error", "kernel": rng.choice(("bfs", "cc", "pr")),
             "attempts": [0]}]


def _start_server(
    tmp: Path, resume: bool, extra_env: dict[str, str]
) -> tuple[subprocess.Popen, int]:
    """Launch ``repro serve`` in its own process group; returns (proc, port)."""
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--host", "127.0.0.1", "--port", "0",
        "--archive-dir", str(tmp / "archive"),
        "--cache-dir", str(tmp / "graphs"),
        "--journal-dir", str(tmp / "journals"),
    ]
    if resume:
        argv.append("--resume")
    env = dict(os.environ, PYTHONPATH=SRC, **extra_env)
    # A plan left over from the caller's environment must not leak into
    # rounds that did not ask for it.
    for key in ("REPRO_IO_FAULTS", "REPRO_FAULTS", "REPRO_MIN_FREE_BYTES"):
        if key not in extra_env:
            env.pop(key, None)
    proc = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=env, text=True, start_new_session=True,
    )
    deadline = time.time() + 90.0
    port = None
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(f"server exited early (code {proc.poll()})")
        if "listening on http://" in line:
            port = int(line.rsplit(":", 1)[1])
            break
    assert port is not None, "server never reported its port"
    return proc, port


def _sigkill_group(proc: subprocess.Popen) -> None:
    try:
        os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
    except ProcessLookupError:
        pass
    proc.wait(timeout=30.0)


def _canonical(result: dict) -> str:
    return json.dumps(result, sort_keys=True, separators=(",", ":"))


def run_soak(
    rounds: int = 3,
    clients: int = 3,
    kill_after: float = 4.0,
    seed: int = 0,
    client_timeout: float = 120.0,
) -> dict[str, object]:
    """Run the full soak; raises AssertionError on any broken invariant."""
    rng = random.Random(seed)
    tmp = Path(tempfile.mkdtemp(prefix="repro-chaos-soak-"))
    completed: dict[tuple[str, ...], str] = {}  # cell key -> digest
    transport_errors = 0
    kills = 0
    io_plans: list[list[dict]] = []

    # -- soak rounds: faults + fleet + SIGKILL ---------------------------
    for round_no in range(rounds):
        flip_archive = round_no == rounds - 1
        io_plan = _random_io_plan(rng, flip_archive)
        compute_plan = _random_compute_plan(rng)
        io_plans.append(io_plan)
        env = {"REPRO_IO_FAULTS": json.dumps(io_plan)}
        if compute_plan:
            env["REPRO_FAULTS"] = json.dumps(compute_plan)
        proc, port = _start_server(tmp, resume=round_no > 0, extra_env=env)

        errors_lock = threading.Lock()
        round_errors = [0]

        def drive(slot: int) -> None:
            client = ServiceClient(
                "127.0.0.1", port, timeout=client_timeout,
                max_attempts=2, backoff=0.1,
            )
            try:
                for n in range(len(CAMPAIGNS)):
                    campaign = CAMPAIGNS[(slot + n) % len(CAMPAIGNS)]
                    try:
                        for event in client.submit(campaign):
                            if event["event"] != "cell":
                                continue
                            if event["result"].get("status", "ok") != "ok":
                                # A faulted cell: recorded as an error
                                # result, never indexed, legitimately
                                # re-executed later.
                                continue
                            key = tuple(event["cell"])
                            completed[key] = event["digest"]
                    except (ServiceError, OSError):
                        # The server was killed (or a faulted job failed
                        # the whole submission): expected during chaos.
                        with errors_lock:
                            round_errors[0] += 1
                        return
            finally:
                client.close()

        threads = [
            threading.Thread(target=drive, args=(slot,), daemon=True)
            for slot in range(clients)
        ]
        for thread in threads:
            thread.start()
        time.sleep(kill_after * (0.5 + rng.random()))
        _sigkill_group(proc)
        kills += 1
        for thread in threads:
            thread.join(timeout=60.0)
        transport_errors += round_errors[0]

    assert completed, "soak completed zero cells; faults were too aggressive"

    # -- degraded round: watermark floor no disk can satisfy -------------
    proc, port = _start_server(
        tmp, resume=True,
        extra_env={"REPRO_MIN_FREE_BYTES": str(10**18)},
    )
    degraded_rejected = 0
    try:
        client = ServiceClient("127.0.0.1", port, timeout=client_timeout)
        health = client.health()
        assert health["degraded"] is True, health
        assert not health["ok"], "degraded server must not report ok"
        assert any("disk" in r for r in health["degraded_reasons"]), health

        events = client.submit_and_collect(DEGRADED_CAMPAIGN)
        terminal = events[-1]
        assert terminal["event"] == "degraded", (
            f"miss under disk pressure must be rejected structurally, "
            f"got {terminal}"
        )
        assert terminal["rejected"] > 0
        assert terminal["retry_after_seconds"] > 0
        degraded_rejected = terminal["rejected"]
        # Cells already measured still stream as hits while degraded.
        known = [k for k in completed if k[0] in ("urand", "kron", "road")]
        if known:
            hit_events = client.submit_and_collect(CAMPAIGNS[0])
            served = [e for e in hit_events if e["event"] == "cell"]
            assert all(e["cached"] for e in served)
        client.close()
    finally:
        # SIGTERM, not SIGKILL: the drain path must exit 0.
        proc.terminate()
        code = proc.wait(timeout=60.0)
    assert code == 0, f"graceful drain exited {code}"

    # -- scrub: self-healing converges -----------------------------------
    archive = RunArchive(tmp / "archive")
    report = scrub(archive)
    assert report.verdict in ("clean", "healed"), report.as_dict()
    second = scrub(RunArchive(tmp / "archive"))
    assert second.verdict == "clean", second.as_dict()

    index, _heal = open_self_healing_index(RunArchive(tmp / "archive"))
    surviving = {key for key, digest in completed.items() if digest in index}
    quarantined_cells = len(completed) - len(surviving)
    index.close()

    # -- cold restart: zero recompute for everything that survived -------
    proc, port = _start_server(tmp, resume=True, extra_env={})
    try:
        client = ServiceClient("127.0.0.1", port, timeout=client_timeout)
        first_pass: dict[tuple[str, ...], tuple[bool, str]] = {}
        for campaign in CAMPAIGNS:
            for event in client.submit_and_collect(campaign):
                if event["event"] == "cell":
                    first_pass[tuple(event["cell"])] = (
                        bool(event["cached"]), _canonical(event["result"]),
                    )
        recomputed = [
            key for key in surviving if not first_pass[key][0]
        ]
        assert not recomputed, (
            f"{len(recomputed)} soak-completed cells with surviving runs "
            f"were re-executed after restart: {recomputed[:5]}"
        )
        # Second pass: everything cached, byte-identical.
        for campaign in CAMPAIGNS:
            events = client.submit_and_collect(campaign)
            assert events[-1]["event"] == "done"
            assert events[-1]["executed"] == 0, (
                f"second cold pass executed {events[-1]['executed']} cells"
            )
            for event in events:
                if event["event"] != "cell":
                    continue
                key = tuple(event["cell"])
                assert _canonical(event["result"]) == first_pass[key][1], (
                    f"cached result for {key} changed between passes"
                )
        final_health = client.health()
        client.shutdown()
    finally:
        if proc.poll() is None:
            _sigkill_group(proc)

    return {
        "environment": fingerprint(),
        "config": {
            "rounds": rounds,
            "clients": clients,
            "kill_after_seconds": kill_after,
            "seed": seed,
            "campaigns": len(CAMPAIGNS),
        },
        "soak": {
            "sigkills": kills,
            "cells_completed": len(completed),
            "client_transport_errors": transport_errors,
            "io_plans": io_plans,
        },
        "degraded": {
            "rejected_cells": degraded_rejected,
            "drain_exit_code": code,
        },
        "scrub": {
            "first_verdict": report.verdict,
            "second_verdict": second.verdict,
            "quarantined_runs": len(report.quarantined),
            "index_rebuilt": report.index_rebuilt,
        },
        "cold_restart": {
            "surviving_cells": len(surviving),
            "quarantine_lost_cells": quarantined_cells,
            "recomputed_surviving_cells": 0,
            "second_pass_fully_cached": True,
            "final_quarantine_count": final_health["quarantine_count"],
        },
    }


@pytest.mark.tier2
@pytest.mark.slow
def test_chaos_soak_smoke():
    """Reduced soak: two fault rounds, a kill each, then full convergence."""
    data = run_soak(rounds=2, clients=2, kill_after=3.0, seed=7)
    assert data["soak"]["sigkills"] == 2
    assert data["soak"]["cells_completed"] > 0
    assert data["scrub"]["second_verdict"] == "clean"
    assert data["degraded"]["rejected_cells"] > 0
    assert data["cold_restart"]["recomputed_surviving_cells"] == 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument("--kill-after", type=float, default=4.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_chaos_soak.json"),
        metavar="PATH",
    )
    args = parser.parse_args(argv)
    data = run_soak(
        rounds=args.rounds, clients=args.clients,
        kill_after=args.kill_after, seed=args.seed,
    )
    payload = bench_payload("chaos_soak", data)
    write_json_atomic(args.out, payload)
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
