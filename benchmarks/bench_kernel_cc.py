"""K-CC — Section V-C: the most algorithm-diverse kernel.

Afforest (GAP/Galois/NWGraph) vs FastSV (SuiteSparse) vs label propagation
(GraphIt, the Road disaster) vs Shiloach–Vishkin (GKC).
"""

import pytest

from repro.frameworks import FRAMEWORK_NAMES, Mode, RunContext, get
from repro.la import use_substrate


@pytest.mark.parametrize("graph_name", ["road", "kron"])
@pytest.mark.parametrize("fw_name", FRAMEWORK_NAMES)
def test_cc(benchmark, kernel_cases, fw_name, graph_name):
    case = kernel_cases[graph_name]
    framework = get(fw_name)
    ctx = RunContext(graph_name=graph_name)
    benchmark.group = f"cc:{graph_name}"
    benchmark.pedantic(
        lambda: framework.connected_components(case.graph, ctx),
        rounds=5,
        warmup_rounds=1,
    )


def test_cc_graphit_road_short_circuit(benchmark, kernel_cases):
    """GraphIt's Optimized Road schedule: label prop + short-circuiting."""
    case = kernel_cases["road"]
    framework = get("graphit")
    ctx = RunContext(mode=Mode.OPTIMIZED, graph_name="road")
    benchmark.group = "cc:road"
    benchmark.pedantic(
        lambda: framework.connected_components(case.graph, ctx),
        rounds=5,
        warmup_rounds=1,
    )


@pytest.mark.parametrize("engine", ["legacy", "substrate"])
def test_cc_substrate_ab(benchmark, kernel_cases, engine):
    """A/B the LA substrate against the pre-port engine on the same kernel."""
    case = kernel_cases["kron"]
    framework = get("gap")
    ctx = RunContext(graph_name="kron")
    benchmark.group = "cc:substrate-ab"
    def run():
        with use_substrate(engine == "substrate"):
            framework.connected_components(case.graph, ctx)
    benchmark.pedantic(run, rounds=5, warmup_rounds=1)
