"""A2 — delta sensitivity: why GAP exempts delta from the no-tuning rule.

The paper: "GAP allows customization of this parameter based on the graph
topology because it can lead to orders of magnitude difference in
performance otherwise."  This sweep measures SSSP across a delta range on
the two contrasting topologies so that sensitivity is visible in the
benchmark report: Road's optimum sits at large deltas (deep distance
range, tiny frontiers), the power-law graph's at small ones.
"""

import pytest

from repro.core import SourcePicker
from repro.frameworks import RunContext, get

DELTAS = (4, 16, 64, 256, 1024)


@pytest.mark.parametrize("delta", DELTAS)
@pytest.mark.parametrize("graph_name", ["road", "kron"])
def test_delta_sweep(benchmark, kernel_cases, graph_name, delta):
    case = kernel_cases[graph_name]
    gap = get("gap")
    source = SourcePicker(case.graph).next_source()
    ctx = RunContext(delta=delta)
    benchmark.group = f"delta-sweep:{graph_name}"
    benchmark.extra_info["delta"] = delta
    benchmark.pedantic(
        lambda: gap.sssp(case.weighted, source, ctx), rounds=3, warmup_rounds=1
    )
